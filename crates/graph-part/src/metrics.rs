//! Partition quality metrics.
//!
//! Besides the standard total edge cut and per-constraint imbalance, this
//! module computes the **maximum per-partition edge cut**, which Figure 14
//! of the paper plots: "although minimizing the total edge cuts limits the
//! maximum edge cuts per partition, these tools do not balance edge cuts
//! across partitions, which is also important for minimizing communication
//! cost" (§VI).

use crate::graph::CsrGraph;
use crate::Partition;

/// Total weight of edges crossing partitions (each edge counted once).
pub fn total_edge_cut(g: &CsrGraph, p: &Partition) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.n() {
        for (u, w) in g.neighbors(v) {
            if v < u && p.assignment[v as usize] != p.assignment[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut
}

/// Per-partition cut: for each partition, the weight of its edges whose
/// other endpoint lies elsewhere (each cut edge contributes to *both* of
/// its partitions, matching how communication cost is paid at both ends).
pub fn per_partition_cut(g: &CsrGraph, p: &Partition) -> Vec<u64> {
    let mut cuts = vec![0u64; p.k as usize];
    for v in 0..g.n() {
        let pv = p.assignment[v as usize];
        for (u, w) in g.neighbors(v) {
            if p.assignment[u as usize] != pv {
                cuts[pv as usize] += w as u64;
            }
        }
    }
    cuts
}

/// Maximum per-partition edge cut (the Figure 14 quantity).
pub fn max_partition_cut(g: &CsrGraph, p: &Partition) -> u64 {
    per_partition_cut(g, p).into_iter().max().unwrap_or(0)
}

/// Per-partition loads: `loads[p][c]`.
pub fn partition_loads(g: &CsrGraph, p: &Partition) -> Vec<Vec<u64>> {
    let mut loads = vec![vec![0u64; g.ncon()]; p.k as usize];
    for v in 0..g.n() {
        let pv = p.assignment[v as usize] as usize;
        for (c, &w) in g.vwgts(v).iter().enumerate() {
            loads[pv][c] += w;
        }
    }
    loads
}

/// Per-constraint imbalance: `max_p load[p][c] / (total_c / k)`.
/// 1.0 is perfect balance.
pub fn imbalances(g: &CsrGraph, p: &Partition) -> Vec<f64> {
    let loads = partition_loads(g, p);
    let totals = g.total_weights();
    (0..g.ncon())
        .map(|c| {
            let avg = (totals[c] as f64 / p.k as f64).max(f64::MIN_POSITIVE);
            let max = loads.iter().map(|l| l[c]).max().unwrap_or(0);
            max as f64 / avg
        })
        .collect()
}

/// All quality metrics in one pass-friendly bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of partitions.
    pub k: u32,
    /// Total cut weight.
    pub edge_cut: u64,
    /// Maximum per-partition cut weight.
    pub max_partition_cut: u64,
    /// `loads[p][c]`.
    pub loads: Vec<Vec<u64>>,
    /// Per-constraint imbalance ratios.
    pub imbalance: Vec<f64>,
}

impl PartitionQuality {
    /// Compute every metric for a partition.
    pub fn compute(g: &CsrGraph, p: &Partition) -> Self {
        PartitionQuality {
            k: p.k,
            edge_cut: total_edge_cut(g, p),
            max_partition_cut: max_partition_cut(g, p),
            loads: partition_loads(g, p),
            imbalance: imbalances(g, p),
        }
    }

    /// Maximum load under constraint `c` (§III-B's `Lmax`).
    pub fn max_load(&self, c: usize) -> u64 {
        self.loads.iter().map(|l| l[c]).max().unwrap_or(0)
    }

    /// Total load under constraint `c` (§III-B's `Ltot`).
    pub fn total_load(&self, c: usize) -> u64 {
        self.loads.iter().map(|l| l[c]).sum()
    }

    /// The paper's estimated speedup upper bound `Sub = Ltot / Lmax` for
    /// constraint `c` (Figures 4 and 8).
    pub fn speedup_upper_bound(&self, c: usize) -> f64 {
        let lmax = self.max_load(c);
        if lmax == 0 {
            return 0.0;
        }
        self.total_load(c) as f64 / lmax as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 4 vertices in two dumbbells connected by one bridge.
    fn dumbbell() -> CsrGraph {
        let mut b = GraphBuilder::new(4, 1);
        for v in 0..4 {
            b.set_vwgt(v, &[v as u64 + 1]);
        }
        b.add_edge(0, 1, 10);
        b.add_edge(2, 3, 10);
        b.add_edge(1, 2, 3); // bridge
        b.build()
    }

    fn part(k: u32, a: &[u32]) -> Partition {
        Partition {
            k,
            assignment: a.to_vec(),
        }
    }

    #[test]
    fn cut_counts_bridge_only() {
        let g = dumbbell();
        let p = part(2, &[0, 0, 1, 1]);
        assert_eq!(total_edge_cut(&g, &p), 3);
        assert_eq!(per_partition_cut(&g, &p), vec![3, 3]);
        assert_eq!(max_partition_cut(&g, &p), 3);
    }

    #[test]
    fn bad_cut_is_larger() {
        let g = dumbbell();
        let p = part(2, &[0, 1, 0, 1]);
        assert_eq!(total_edge_cut(&g, &p), 23);
    }

    #[test]
    fn loads_and_imbalance() {
        let g = dumbbell();
        let p = part(2, &[0, 0, 1, 1]);
        let loads = partition_loads(&g, &p);
        assert_eq!(loads, vec![vec![3], vec![7]]);
        let imb = imbalances(&g, &p);
        assert!((imb[0] - 7.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn quality_bundle_consistent() {
        let g = dumbbell();
        let p = part(2, &[0, 0, 1, 1]);
        let q = PartitionQuality::compute(&g, &p);
        assert_eq!(q.edge_cut, 3);
        assert_eq!(q.total_load(0), 10);
        assert_eq!(q.max_load(0), 7);
        assert!((q.speedup_upper_bound(0) - 10.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_partition_handled() {
        let g = dumbbell();
        let p = part(3, &[0, 0, 1, 1]);
        let q = PartitionQuality::compute(&g, &p);
        assert_eq!(q.loads[2], vec![0]);
        assert_eq!(q.max_partition_cut, 3);
    }

    #[test]
    fn asymmetric_partition_cut_sides() {
        // Cut edges land on both sides' tallies.
        let mut b = GraphBuilder::new(3, 1);
        for v in 0..3 {
            b.set_vwgt(v, &[1]);
        }
        b.add_edge(0, 1, 2);
        b.add_edge(0, 2, 4);
        let g = b.build();
        let p = part(3, &[0, 1, 2]);
        assert_eq!(per_partition_cut(&g, &p), vec![6, 2, 4]);
        assert_eq!(total_edge_cut(&g, &p), 6);
    }
}
