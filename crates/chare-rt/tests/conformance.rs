//! Cross-engine conformance: the sequential, threaded, and virtual-time
//! DST engines must produce identical application results for the same
//! workload under every benign fault plan — and the deliberately lossy
//! plan (the negative control) must be caught, not absorbed.

use chare_rt::{
    Chare, ChareId, Ctx, ExecMode, FaultPlan, Message, Runtime, RuntimeConfig, SmpConfig,
};

#[derive(Debug)]
struct Storm {
    hops: u32,
    value: u64,
}
impl Message for Storm {}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mixes incoming values into per-chare state and fans out to
/// pseudo-random (deterministic) targets — a storm whose result is a
/// fingerprint of exactly which messages were delivered.
struct Mixer {
    id: u64,
    n_chares: u32,
    acc: u64,
}

impl Chare<Storm> for Mixer {
    fn receive(&mut self, msg: Storm, ctx: &mut Ctx<'_, Storm>) {
        let h = mix(msg.value ^ self.id);
        self.acc = self.acc.wrapping_add(h);
        ctx.contribute(0, h & 0xFFFF);
        ctx.contribute(1, 1);
        if msg.hops > 0 {
            ctx.send(
                ChareId((h % self.n_chares as u64) as u32),
                Storm {
                    hops: msg.hops - 1,
                    value: h,
                },
            );
            if h & 1 == 1 {
                ctx.send(
                    ChareId(((h >> 32) % self.n_chares as u64) as u32),
                    Storm {
                        hops: msg.hops - 1,
                        value: h ^ 0xABCD,
                    },
                );
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

const N_CHARES: u32 = 24;
const HOPS: u32 = 6;

/// Run the storm and return (result fingerprint, messages processed,
/// messages lost).
fn run_storm(cfg: RuntimeConfig, app_seed: u64) -> (u64, u64, u64) {
    let mut rt = Runtime::new(cfg);
    for i in 0..N_CHARES {
        rt.add_chare(
            ChareId(i),
            i % cfg.n_pes,
            Box::new(Mixer {
                id: i as u64,
                n_chares: N_CHARES,
                acc: 0,
            }),
        );
    }
    let injections = (0..3)
        .map(|i| {
            let s = mix(app_seed.wrapping_add(i));
            (
                ChareId((s % N_CHARES as u64) as u32),
                Storm {
                    hops: HOPS,
                    value: s,
                },
            )
        })
        .collect();
    let stats = rt.run_phase(injections);
    let totals = stats.totals();
    // Fold chare state into the fingerprint too: results must agree not
    // just in the reductions but in every chare's final accumulator.
    let mut fp = stats.reduction(0) ^ stats.reduction(1).rotate_left(17);
    for (id, chare) in rt.into_chares() {
        let m = chare.into_any().downcast::<Mixer>().unwrap();
        fp = mix(fp ^ mix(id.0 as u64) ^ m.acc);
    }
    (fp, totals.processed, totals.lost)
}

fn base(mode: ExecMode, n_pes: u32) -> RuntimeConfig {
    RuntimeConfig {
        mode,
        smp: SmpConfig {
            pes_per_process: 2,
            comm_thread: true,
        },
        watchdog_secs: 60,
        ..RuntimeConfig::sequential(n_pes)
    }
}

/// The tentpole grid: 8 application seeds × every benign fault plan (each
/// re-seeded per cell), across all three engines. One fingerprint per
/// seed, no exceptions.
#[test]
fn conformance_grid_all_engines_all_benign_plans() {
    for app_seed in 0..8u64 {
        let (fp, processed, lost) = run_storm(base(ExecMode::Sequential, 4), app_seed);
        assert_eq!(lost, 0);
        let thr = run_storm(base(ExecMode::Threads, 3), app_seed);
        assert_eq!(thr.0, fp, "threaded diverged (seed {app_seed})");
        assert_eq!(thr.1, processed);
        for (pi, plan) in FaultPlan::GRID.iter().enumerate() {
            for fault_seed in [app_seed * 31 + 1, app_seed * 31 + 2] {
                let mut cfg = base(ExecMode::VirtualTime, 4);
                cfg.faults = plan.with_seed(fault_seed);
                let vt = run_storm(cfg, app_seed);
                assert_eq!(
                    vt.0, fp,
                    "DST diverged: plan {pi} {plan:?}, app seed {app_seed}, fault seed {fault_seed}"
                );
                assert_eq!(vt.1, processed, "plan {pi} changed the message count");
                assert_eq!(vt.2, 0, "benign plan {pi} lost messages");
            }
        }
    }
}

/// Negative control: a transport that drops without redelivery must be
/// *caught* — results diverge and the loss is reported. A conformance
/// suite that passes under this plan is not testing anything.
#[test]
fn negative_control_lossy_plan_is_caught() {
    let (fp, processed, _) = run_storm(base(ExecMode::Sequential, 4), 0);
    let mut cfg = base(ExecMode::VirtualTime, 4);
    cfg.faults = FaultPlan::lossy(1);
    let (lossy_fp, lossy_processed, lost) = run_storm(cfg, 0);
    assert!(lost > 0, "lossy plan must report lost messages");
    assert_ne!(lossy_fp, fp, "lossy plan must change the fingerprint");
    assert!(lossy_processed < processed);

    // Partial loss is caught too, not just total blackout.
    let mut partial = FaultPlan::lossy(3);
    partial.drop_permille = 250;
    let mut cfg = base(ExecMode::VirtualTime, 4);
    cfg.faults = partial;
    let (pfp, _, plost) = run_storm(cfg, 0);
    assert!(plost > 0);
    assert_ne!(pfp, fp);
}

/// Bounded liveness under stalls: long injected stall windows may slow
/// virtual time but completion detection must still fire every phase (the
/// engine asserts CD fires at quiescence and never early; this drives it
/// through many stalled phases back-to-back).
#[test]
fn completion_detection_survives_heavy_stalls() {
    let mut plan = FaultPlan::stalls(17);
    plan.stall_permille = 400;
    plan.stall_ticks = 20_000;
    let mut cfg = base(ExecMode::VirtualTime, 6);
    cfg.faults = plan;
    let mut rt: Runtime<Storm> = Runtime::new(cfg);
    for i in 0..N_CHARES {
        rt.add_chare(
            ChareId(i),
            i % 6,
            Box::new(Mixer {
                id: i as u64,
                n_chares: N_CHARES,
                acc: 0,
            }),
        );
    }
    let mut last = None;
    for phase in 0..5u64 {
        let stats = rt.run_phase(vec![(
            ChareId((phase % N_CHARES as u64) as u32),
            Storm {
                hops: HOPS,
                value: mix(phase),
            },
        )]);
        assert!(stats.totals().processed > 0, "phase {phase} did no work");
        assert_eq!(stats.totals().lost, 0);
        last = Some(stats.totals().processed);
    }
    assert!(last.is_some());
}

/// The threaded engine's watchdog must be inert on healthy runs: phases
/// complete well inside the deadline with the watchdog armed.
#[test]
fn threaded_watchdog_inert_on_healthy_phases() {
    let mut cfg = base(ExecMode::Threads, 3);
    cfg.watchdog_secs = 30;
    let healthy = run_storm(cfg, 5);
    let reference = run_storm(base(ExecMode::Sequential, 3), 5);
    assert_eq!(healthy.0, reference.0);
}

/// Aggregation on/off and TRAM routing are schedule changes, not semantic
/// ones — the DST engine must agree with itself across them under chaos.
#[test]
fn dst_invariant_to_aggregation_and_tram() {
    let reference = run_storm(base(ExecMode::Sequential, 4), 2).0;
    for tram in [false, true] {
        for agg in [false, true] {
            let mut cfg = base(ExecMode::VirtualTime, 4);
            cfg.smp.pes_per_process = 1;
            cfg.aggregation.enabled = agg;
            cfg.aggregation.tram_2d = tram;
            cfg.faults = FaultPlan::chaos(13);
            let got = run_storm(cfg, 2).0;
            assert_eq!(got, reference, "tram={tram} agg={agg}");
        }
    }
}
