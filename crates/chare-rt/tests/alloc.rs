//! Allocation-count tests for the message pipeline: the aggregator's
//! steady state and its disabled fast path must not touch the heap.
//!
//! Uses a counting `#[global_allocator]` local to this test binary, so the
//! assertions hold for the real allocator behavior, not a model of it.

use chare_rt::aggregator::{Aggregator, Flush};
use chare_rt::{AggregationConfig, ChareId, Message};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Count only allocations made by threads that opted in: the libtest
// harness allocates concurrently (progress output, per-test threads),
// which made whole-process counts flaky.
thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

fn tracked() -> bool {
    // try_with: TLS may already be torn down when a dying thread frees.
    TRACK.try_with(Cell::get).unwrap_or(false)
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`, only bumping a counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if tracked() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: the caller's GlobalAlloc contract is forwarded to `System` unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: the dealloc contract is forwarded to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: the realloc contract is forwarded to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if tracked() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: the caller's GlobalAlloc contract is forwarded to `System` unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    TRACK.with(|t| t.set(true));
    ALLOCS.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct Note(#[allow(dead_code)] u64);
impl Message for Note {}

fn cfg(enabled: bool, max_batch: u32) -> AggregationConfig {
    AggregationConfig {
        enabled,
        max_batch,
        tram_2d: false,
        adaptive: false,
    }
}

/// One full lane cycle: fill to `max_batch` (the last push flushes), drain
/// the packet as a receiver would, and recycle the envelope `Vec`.
fn cycle(a: &mut Aggregator<Note>, batch: u32) {
    let mut flushed = None;
    for i in 0..batch {
        if let Some(f) = a.push(1, ChareId(i), Note(i as u64)) {
            flushed = Some(f);
        }
    }
    let Some(Flush::Packet(mut p)) = flushed else {
        panic!("filling the lane must flush a packet");
    };
    assert_eq!(p.envelopes.len(), batch as usize);
    p.envelopes.clear();
    a.recycle(p.envelopes);
}

#[test]
fn aggregator_steady_state_is_allocation_free() {
    const BATCH: u32 = 64;
    let mut a = Aggregator::new(2, cfg(true, BATCH));
    // Warm up: grow the lane and seed the recycle pool (two buffers
    // circulate between the lane and the pool).
    for _ in 0..3 {
        cycle(&mut a, BATCH);
    }
    let before = allocs();
    for _ in 0..1000 {
        cycle(&mut a, BATCH);
    }
    assert_eq!(
        allocs() - before,
        0,
        "steady-state aggregation must not allocate"
    );
}

#[test]
fn disabled_fast_path_never_allocates() {
    let mut a = Aggregator::new(2, cfg(false, 64));
    let before = allocs();
    for i in 0..1000u32 {
        match a.push(1, ChareId(i), Note(i as u64)) {
            Some(Flush::Single { dst_pe, .. }) => assert_eq!(dst_pe, 1),
            other => panic!("disabled path must emit singles, got {other:?}"),
        }
    }
    assert_eq!(
        allocs() - before,
        0,
        "the aggregation-disabled path must not heap-allocate per message"
    );
    assert_eq!(a.packets(), 1000);
}
