//! Multi-process integration tests for the networked engine.
//!
//! Any test here that configures `n_procs > 1` re-executes this very test
//! binary, filtered to the same test, to create its worker processes (see
//! `chare_rt::net::launch`). The test body therefore runs once per
//! process and must stay SPMD-deterministic: every process takes the same
//! branches and builds the same chare array.

use bytes::{Buf, BufMut, BytesMut};
use chare_rt::{
    Chare, ChareId, Ctx, FaultPlan, Message, NetTransport, Runtime, RuntimeConfig, TransportError,
    KILL_EXIT, TRANSPORT_EXIT,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Hop {
    remaining: u32,
    payload: u64,
}

impl Message for Hop {
    fn wire_encode(&self, out: &mut BytesMut) {
        out.put_u32_le(self.remaining);
        out.put_u64_le(self.payload);
    }

    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 12 {
            return None;
        }
        Some(Hop {
            remaining: buf.get_u32_le(),
            payload: buf.get_u64_le(),
        })
    }
}

/// Accumulates payloads and forwards around a ring — the same workload
/// the in-process engine suites use, so results are directly comparable.
struct Acc {
    next: ChareId,
    sum: u64,
}

impl Chare<Hop> for Acc {
    fn receive(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
        self.sum += msg.payload;
        ctx.contribute(0, msg.payload);
        if msg.remaining > 0 {
            ctx.send(
                self.next,
                Hop {
                    remaining: msg.remaining - 1,
                    payload: msg.payload + 1,
                },
            );
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

const N_CHARES: u32 = 12;

fn build(cfg: RuntimeConfig) -> Runtime<Hop> {
    let mut rt = Runtime::new(cfg);
    for i in 0..N_CHARES {
        rt.add_chare(
            ChareId(i),
            i % cfg.n_pes,
            Box::new(Acc {
                next: ChareId((i + 1) % N_CHARES),
                sum: 0,
            }),
        );
    }
    rt
}

/// Run three phases of ring traffic and fingerprint the per-phase
/// reductions and processed counts.
fn run_phases(cfg: RuntimeConfig) -> Vec<(u64, u64)> {
    let mut rt = build(cfg);
    (0..3u32)
        .map(|phase| {
            let stats = rt.run_phase(vec![(
                ChareId(phase % N_CHARES),
                Hop {
                    remaining: 40 + phase,
                    payload: 1,
                },
            )]);
            (stats.reduction(0), stats.totals().processed)
        })
        .collect()
}

#[test]
fn net_single_process_matches_sequential() {
    let reference = run_phases(RuntimeConfig::sequential(4));
    assert_eq!(run_phases(RuntimeConfig::net(4, 1)), reference);
}

#[test]
fn net_two_processes_match_sequential() {
    let reference = run_phases(RuntimeConfig::sequential(4));
    assert_eq!(run_phases(RuntimeConfig::net(4, 2)), reference);
}

#[test]
fn net_four_processes_with_tram_match_sequential() {
    let reference = run_phases(RuntimeConfig::sequential(8));
    let mut cfg = RuntimeConfig::net(8, 4);
    cfg.aggregation.max_batch = 4;
    cfg.aggregation.tram_2d = true;
    assert_eq!(run_phases(cfg), reference);
}

#[test]
fn net_wire_counters_account_for_cross_process_traffic() {
    let mut rt = build(RuntimeConfig::net(4, 2));
    let stats = rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 60,
            payload: 1,
        },
    )]);
    let totals = stats.totals();
    // A 12-chare ring over 4 PEs in 2 processes crosses the process
    // boundary on every wrap, so batches must actually hit the wire —
    // and both directions of every socket are counted somewhere.
    assert!(totals.sent_remote > 0, "ring must cross processes");
    assert!(totals.wire_frames_sent > 0, "batches must hit the wire");
    assert!(totals.wire_frames_recv > 0);
    assert!(totals.wire_bytes_sent > totals.wire_frames_sent);
    assert!(
        totals.wire_flush_batch + totals.wire_flush_idle > 0,
        "every wire packet leaves through a counted flush"
    );
    // Chares survive teardown on the root (workers exit inside).
    let chares = rt.into_chares();
    assert!(!chares.is_empty());
}

#[test]
fn net_killed_worker_surfaces_transport_error() {
    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.kill_rank = 1;
    cfg.net.kill_phase = 2;
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    // Phase 2: rank 1 kills itself on entry; the root must fail loudly
    // with a *typed* transport error rather than hang, crash with an
    // arbitrary panic, or return a short curve.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("losing a worker must not look like success");
    let te = err
        .downcast_ref::<TransportError>()
        .expect("panic payload must be a typed TransportError");
    assert!(
        te.0.contains("disconnected") || te.0.contains("failed"),
        "error should describe the peer loss, got: {te}"
    );
}

/// Four processes, rank 2 killed: the root panics with a typed
/// `TransportError`, the killed worker exits with `KILL_EXIT`, and — the
/// part that regresses easily — both *surviving* workers shut down
/// cleanly with `TRANSPORT_EXIT` instead of panicking (exit 101).
#[test]
fn net_killed_worker_survivors_exit_cleanly() {
    let mut cfg = RuntimeConfig::net(4, 4);
    cfg.net.kill_rank = 2;
    cfg.net.kill_phase = 2;
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("losing a worker must not look like success");
    assert!(
        err.downcast_ref::<TransportError>().is_some(),
        "root panic payload must be a typed TransportError"
    );
    // Reap the children the catch_unwind kept alive (Drop has not run).
    let exits = rt.reap_workers();
    assert_eq!(exits.len(), 3, "three workers were spawned");
    assert_eq!(exits[1], Some(KILL_EXIT), "rank 2 died by fault injection");
    for (i, code) in exits.iter().enumerate() {
        if i != 1 {
            assert_eq!(
                *code,
                Some(TRANSPORT_EXIT),
                "surviving rank {} must exit cleanly on root abort, not panic",
                i + 1
            );
        }
    }
}

// ---------------------------------------------------------------------
// Transport-matrix tests: the same workload must be bit-identical no
// matter which data plane carries the batches, and the plane that was
// asked for must actually be the one used.
// ---------------------------------------------------------------------

#[test]
fn net_forced_tcp_matches_sequential_and_skips_rings() {
    let reference = run_phases(RuntimeConfig::sequential(4));
    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.transport = NetTransport::Tcp;
    assert_eq!(run_phases(cfg), reference);

    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.transport = NetTransport::Tcp;
    let mut rt = build(cfg);
    let stats = rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 40,
            payload: 1,
        },
    )]);
    let totals = stats.totals();
    assert!(totals.sent_remote > 0, "ring must cross processes");
    assert_eq!(
        totals.shm_frames_sent, 0,
        "forced tcp must never touch the rings"
    );
}

#[test]
fn net_forced_shm_matches_sequential_and_uses_rings() {
    let reference = run_phases(RuntimeConfig::sequential(4));
    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.transport = NetTransport::Shm;
    assert_eq!(run_phases(cfg), reference);

    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.transport = NetTransport::Shm;
    let mut rt = build(cfg);
    let stats = rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 40,
            payload: 1,
        },
    )]);
    let totals = stats.totals();
    assert!(totals.sent_remote > 0, "ring must cross processes");
    assert!(
        totals.shm_frames_sent > 0,
        "forced shm must push batches through the rings"
    );
    assert!(
        totals.agg_batch > 0,
        "the effective batch level must be surfaced"
    );
}

/// `mixed` keeps root links on TCP while worker↔worker links ride the
/// rings — both planes are live in the same phase, so this doubles as the
/// mid-run-interleaving conformance case.
#[test]
fn net_mixed_transport_matches_sequential() {
    let reference = run_phases(RuntimeConfig::sequential(8));
    let mut cfg = RuntimeConfig::net(8, 4);
    cfg.net.transport = NetTransport::Mixed;
    assert_eq!(run_phases(cfg), reference);
}

/// A killed worker must produce the same exit-code triple on the TCP
/// plane as on the (default) shm plane: liveness is a TCP property in
/// both, so the fault surface is transport-independent.
#[test]
fn net_killed_worker_exit_codes_forced_tcp() {
    let mut cfg = RuntimeConfig::net(4, 4);
    cfg.net.transport = NetTransport::Tcp;
    cfg.net.kill_rank = 2;
    cfg.net.kill_phase = 2;
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("losing a worker must not look like success");
    assert!(err.downcast_ref::<TransportError>().is_some());
    let exits = rt.reap_workers();
    assert_eq!(exits[1], Some(KILL_EXIT));
    for (i, code) in exits.iter().enumerate() {
        if i != 1 {
            assert_eq!(*code, Some(TRANSPORT_EXIT));
        }
    }
}

/// Peer death on the shm plane: a worker killed mid-phase may leave a
/// torn frame in its outbound rings, but liveness travels over the TCP
/// control plane, so the root must still surface `TransportError` and the
/// exit-code triple must match the TCP plane's (kill=17, survivors=16).
/// The rings' torn prefix is simply never yielded (FrameBuf buffers it).
#[test]
fn net_killed_worker_exit_codes_forced_shm() {
    let mut cfg = RuntimeConfig::net(4, 4);
    cfg.net.transport = NetTransport::Shm;
    cfg.net.kill_rank = 2;
    cfg.net.kill_phase = 2;
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("losing a worker must not look like success");
    assert!(err.downcast_ref::<TransportError>().is_some());
    let exits = rt.reap_workers();
    assert_eq!(exits[1], Some(KILL_EXIT));
    for (i, code) in exits.iter().enumerate() {
        if i != 1 {
            assert_eq!(*code, Some(TRANSPORT_EXIT));
        }
    }
}

/// A stalled worker (process alive, threads descheduled — the
/// SIGSTOP-equivalent) produces no socket EOF, so only the heartbeat
/// detector can catch it, and the abort must *name* the classification:
/// "stalled", not a generic disconnect.
#[test]
fn net_stalled_worker_classified_by_heartbeat() {
    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.heartbeat_interval_ms = 50;
    cfg.net.heartbeat_timeout_ms = 500;
    cfg.faults = FaultPlan::proc_stall(7, 1, 2, 3_000);
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    // Phase 2: rank 1 goes silent for 3s with its sockets open; the
    // detector must declare it stalled within the 500ms timeout.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("a stalled worker must not look like success");
    let te = err
        .downcast_ref::<TransportError>()
        .expect("panic payload must be a typed TransportError");
    assert!(
        te.0.contains("stalled"),
        "detector must classify the silence as a stall, got: {te}"
    );
}

/// Count live-or-zombie children of this process whose state is `Z`
/// (exited but not waited on) by scanning `/proc`.
fn zombie_children() -> usize {
    let me = std::process::id();
    std::fs::read_dir("/proc")
        .into_iter()
        .flatten()
        .flatten()
        .filter(|e| {
            let Ok(name) = e.file_name().into_string() else {
                return false;
            };
            if name.parse::<u32>().is_err() {
                return false;
            }
            let Ok(stat) = std::fs::read_to_string(e.path().join("stat")) else {
                return false;
            };
            // Layout: `pid (comm) state ppid ...` — comm may hold spaces,
            // so split from the closing paren.
            let Some(rest) = stat.rsplit(')').next() else {
                return false;
            };
            let mut fields = rest.split_whitespace();
            let state = fields.next();
            let ppid = fields.next().and_then(|p| p.parse::<u32>().ok());
            state == Some("Z") && ppid == Some(me)
        })
        .count()
}

/// After a mid-run worker kill, tearing the runtime down must `wait()`
/// every child: no zombie processes may outlive the reap. One runtime
/// per test — a worker replays earlier net constructions standalone,
/// where the kill never fires, so a multi-runtime kill test would panic
/// in the worker. (Other tests in this binary run concurrently and may
/// have momentarily-unreaped children, so only a *persistent* zombie
/// fails.)
fn assert_no_zombies_after_kill(transport: NetTransport) {
    let mut cfg = RuntimeConfig::net(4, 4);
    cfg.net.transport = transport;
    cfg.net.kill_rank = 2;
    cfg.net.kill_phase = 2;
    let mut rt = build(cfg);
    rt.run_phase(vec![(
        ChareId(0),
        Hop {
            remaining: 20,
            payload: 1,
        },
    )]);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 20,
                payload: 1,
            },
        )])
    }))
    .expect_err("losing a worker must not look like success");
    assert!(err.downcast_ref::<TransportError>().is_some());
    let exits = rt.reap_workers();
    assert_eq!(exits.len(), 3, "all three workers must be accounted for");
    let mut zombies = zombie_children();
    for _ in 0..40 {
        if zombies == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        zombies = zombie_children();
    }
    assert_eq!(
        zombies, 0,
        "reap must leave no zombie children ({transport:?} plane)"
    );
}

#[test]
fn net_reap_leaves_no_zombies_after_worker_kill_tcp() {
    assert_no_zombies_after_kill(NetTransport::Tcp);
}

#[test]
fn net_reap_leaves_no_zombies_after_worker_kill_shm() {
    assert_no_zombies_after_kill(NetTransport::Shm);
}

/// Regression test for the batch-sweep dead zone: when a burst of remote
/// sends is queued, aggregation must fill frames to `max_batch`, and the
/// flush-cause histogram must attribute the envelopes to batch-full
/// flushes. (The old sweep sat at ~3 msgs/frame at every batch setting
/// because idle flushes dominated its low-injection workload; the
/// histogram makes that visible and this pins the full-frame path.)
#[test]
fn net_aggregation_fills_frames_under_burst() {
    let mut cfg = RuntimeConfig::net(4, 2);
    cfg.net.transport = NetTransport::Tcp;
    cfg.aggregation.adaptive = false;
    cfg.aggregation.max_batch = 8;
    let mut rt = build(cfg);
    // 64 concurrent hops at chare 1 (process 0); every hop sends exactly
    // one message to chare 2 (process 1) — a 64-message burst into one
    // aggregation lane, drained in a single quantum.
    let burst: Vec<(ChareId, Hop)> = (0..64)
        .map(|_| {
            (
                ChareId(1),
                Hop {
                    remaining: 1,
                    payload: 1,
                },
            )
        })
        .collect();
    let totals = rt.run_phase(burst).totals();
    assert_eq!(totals.wire_flush_batch, 8, "64 msgs / batch 8 = 8 flushes");
    assert_eq!(totals.wire_msgs_batch, 64, "every envelope left batch-full");
    assert_eq!(totals.wire_msgs_idle, 0, "no stragglers on this workload");
    assert_eq!(totals.agg_batch, 8, "static batch level is surfaced");
}
