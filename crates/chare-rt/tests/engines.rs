//! Property test: the sequential and threaded engines — under any SMP
//! topology, aggregation setting, TRAM routing, and PE count — produce
//! identical application results for randomized message storms.

use chare_rt::{
    AggregationConfig, Chare, ChareId, Ctx, ExecMode, FaultPlan, Message, Runtime, RuntimeConfig,
    SmpConfig,
};
use proptest::prelude::*;

#[derive(Debug)]
struct Storm {
    hops: u32,
    value: u64,
}
impl Message for Storm {}

/// A chare that mixes its state with incoming values and fans out to
/// pseudo-random (but deterministic) targets.
struct Mixer {
    id: u64,
    n_chares: u32,
    acc: u64,
}

fn mix(x: u64) -> u64 {
    // SplitMix64 finalizer: deterministic target selection.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Chare<Storm> for Mixer {
    fn receive(&mut self, msg: Storm, ctx: &mut Ctx<'_, Storm>) {
        let h = mix(msg.value ^ self.id);
        self.acc = self.acc.wrapping_add(h);
        ctx.contribute(0, h & 0xFFFF);
        ctx.contribute(1, 1);
        if msg.hops > 0 {
            // Fan out to one or two deterministic targets.
            let t1 = (h % self.n_chares as u64) as u32;
            ctx.send(
                ChareId(t1),
                Storm {
                    hops: msg.hops - 1,
                    value: h,
                },
            );
            if h & 1 == 1 {
                let t2 = ((h >> 32) % self.n_chares as u64) as u32;
                ctx.send(
                    ChareId(t2),
                    Storm {
                        hops: msg.hops - 1,
                        value: h ^ 0xABCD,
                    },
                );
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

fn run_storm(cfg: RuntimeConfig, n_chares: u32, hops: u32, seeds: &[u64]) -> (u64, u64) {
    let mut rt = Runtime::new(cfg);
    for i in 0..n_chares {
        rt.add_chare(
            ChareId(i),
            i % cfg.n_pes,
            Box::new(Mixer {
                id: i as u64,
                n_chares,
                acc: 0,
            }),
        );
    }
    let injections = seeds
        .iter()
        .map(|&s| {
            (
                ChareId((s % n_chares as u64) as u32),
                Storm { hops, value: s },
            )
        })
        .collect();
    let stats = rt.run_phase(injections);
    (stats.reduction(0), stats.reduction(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engine_configs_agree(
        n_chares in 2u32..40,
        hops in 0u32..8,
        pes in 1u32..6,
        pes_per_process in 1u32..4,
        batch in prop_oneof![Just(1u32), Just(4), Just(64)],
        tram in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let seeds: Vec<u64> = (0..4).map(|i| mix(seed + i)).collect();
        let make = |mode: ExecMode, n_pes: u32| RuntimeConfig {
            n_pes,
            mode,
            smp: SmpConfig {
                pes_per_process,
                comm_thread: true,
            },
            aggregation: AggregationConfig {
                enabled: batch > 1,
                max_batch: batch,
                tram_2d: tram,
                adaptive: false,
            },
            sync: Default::default(),
            faults: FaultPlan::none(0),
            watchdog_secs: 30,
            net: Default::default(),
        };
        // Reference: one sequential PE.
        let reference = run_storm(make(ExecMode::Sequential, 1), n_chares, hops, &seeds);
        prop_assert!(reference.1 >= seeds.len() as u64);
        // Sequential at the sampled width.
        let seq = run_storm(make(ExecMode::Sequential, pes), n_chares, hops, &seeds);
        prop_assert_eq!(seq, reference);
        // Threaded at a modest width (thread spawn cost bounds the sweep).
        let thr = run_storm(make(ExecMode::Threads, pes.min(3)), n_chares, hops, &seeds);
        prop_assert_eq!(thr, reference);
        // The DST engine under a chaotic-but-benign fault plan must agree
        // too: delivery timing is not allowed to change application results.
        let mut dst = make(ExecMode::VirtualTime, pes);
        dst.faults = FaultPlan::chaos(seed);
        let vt = run_storm(dst, n_chares, hops, &seeds);
        prop_assert_eq!(vt, reference);
    }
}
