//! Runtime configuration: execution mode, SMP topology, aggregation.

use crate::faults::FaultPlan;

/// How the runtime executes PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One thread simulates all PEs deterministically (strict round-robin
    /// message draining). Per-PE busy time is still measured, so this mode
    /// doubles as the calibration harness for the performance model.
    Sequential,
    /// One OS thread per PE, crossbeam channels between them.
    Threads,
    /// Deterministic-simulation-testing engine: all PEs on one thread under
    /// a virtual-time event scheduler that replays any delivery
    /// interleaving from [`RuntimeConfig::faults`]'s seed and injects the
    /// plan's faults (delay, reorder, duplicate, drop, stall). Test-only by
    /// intent; results must match the other engines exactly.
    VirtualTime,
    /// Networked multi-process engine: [`NetConfig::n_procs`] OS processes
    /// (the root plus re-executed workers), each owning a contiguous PE
    /// range, exchanging length-prefixed frames over loopback TCP with a
    /// dedicated comm thread per process (§IV-A made real). See
    /// [`crate::net`].
    Net,
}

/// Which transport carries cross-process BATCH frames in the net engine.
///
/// Control traffic (phase fencing, completion detection, stats, shutdown,
/// liveness) always rides the loopback TCP mesh; this knob selects the
/// *data* path only. When the configured value is [`NetTransport::Auto`],
/// the environment variable `ChareNetTransport` (fallback spelling
/// `CHARE_NET_TRANSPORT`) overrides it with `tcp`, `shm`, `mixed`, or
/// `auto`; a config that forces a specific plane is not overridden (CI's
/// transport matrix relies on forced-plane tests keeping their meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetTransport {
    /// Pick the best available backend: shared-memory rings when the
    /// platform supports `memfd_create`/`mmap` (peers always share a host
    /// under the SPMD re-exec launcher), loopback TCP otherwise.
    #[default]
    Auto,
    /// Force loopback TCP for every link.
    Tcp,
    /// Force shared-memory rings for every link; setup failure is a
    /// transport error instead of a silent TCP fallback.
    Shm,
    /// Mid-run mix: root↔worker links stay on TCP while worker↔worker
    /// links use shared memory — the conformance suite pins that results
    /// are identical no matter which links take which path.
    Mixed,
}

impl NetTransport {
    /// Parse an override string (the `ChareNetTransport` env values).
    pub fn parse(s: &str) -> Option<NetTransport> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(NetTransport::Auto),
            "tcp" => Some(NetTransport::Tcp),
            "shm" => Some(NetTransport::Shm),
            "mixed" => Some(NetTransport::Mixed),
            _ => None,
        }
    }
}

/// Networked-engine settings, honoured only by [`ExecMode::Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Total process count (root + workers). `1` runs the net engine's
    /// compute loop without any sockets.
    pub n_procs: u32,
    /// Fault-injection knob for the conformance suite: the worker with this
    /// rank exits abruptly when it enters phase [`NetConfig::kill_phase`].
    /// `u32::MAX` (the default) disables the kill.
    pub kill_rank: u32,
    /// Phase number (1-based) at which `kill_rank` dies.
    pub kill_phase: u32,
    /// Deadline in milliseconds for the socket mesh to come up (worker
    /// spawn → HELLO → PEERS → MESH_OK).
    pub connect_timeout_ms: u32,
    /// BATCH transport selection (see [`NetTransport`]).
    pub transport: NetTransport,
    /// Data capacity of each SPSC shared-memory ring in bytes. One ring
    /// per ordered peer pair; frames larger than half a ring fall back to
    /// the TCP path.
    pub shm_ring_bytes: u32,
    /// Failure-detector probe interval in milliseconds. `0` (the default)
    /// disables explicit heartbeats; peer loss is then detected only via
    /// socket EOF/write errors. When nonzero, the root's comm thread sends
    /// HEARTBEAT frames at this cadence and every inbound frame (CD
    /// replies included — the heartbeats piggyback on probe traffic)
    /// refreshes the peer's liveness clock.
    pub heartbeat_interval_ms: u32,
    /// Failure-detector timeout in milliseconds: a worker whose comm
    /// thread has been silent this long is declared *stalled* (socket
    /// still open) and the run aborts with a typed
    /// [`crate::net::TransportError`] naming the classification. Only
    /// consulted when `heartbeat_interval_ms > 0`.
    pub heartbeat_timeout_ms: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            n_procs: 1,
            kill_rank: u32::MAX,
            kill_phase: 0,
            connect_timeout_ms: 30_000,
            transport: NetTransport::Auto,
            shm_ring_bytes: 256 * 1024,
            heartbeat_interval_ms: 0,
            heartbeat_timeout_ms: 1_000,
        }
    }
}

/// SMP topology (§IV-A): `n` cores per node, `k` processes per node, one
/// core per process donated to a communication thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// PEs per process. Sends between PEs of the same process are
    /// intra-process (shared memory); others are inter-process (network).
    pub pes_per_process: u32,
    /// Whether each process has a dedicated communication thread. This
    /// affects the *accounting* (offloaded send overhead) used by the
    /// performance model; message delivery is identical.
    pub comm_thread: bool,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig {
            pes_per_process: 1,
            comm_thread: false,
        }
    }
}

impl SmpConfig {
    /// Process of a PE.
    #[inline]
    pub fn process_of(&self, pe: u32) -> u32 {
        pe / self.pes_per_process.max(1)
    }

    /// Whether two PEs share a process.
    #[inline]
    pub fn same_process(&self, a: u32, b: u32) -> bool {
        self.process_of(a) == self.process_of(b)
    }
}

/// Message aggregation (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationConfig {
    /// Enabled?
    pub enabled: bool,
    /// Flush a destination buffer at this many messages. Under
    /// [`AggregationConfig::adaptive`] this is only the *initial* batch
    /// size; the net engine then resizes it from observed flush cost.
    pub max_batch: u32,
    /// Route remote messages through a virtual 2D grid (TRAM, the §IV-C
    /// footnote): aggregation lanes shrink from O(P) to O(√P) at the cost
    /// of an extra hop for off-row/off-column destinations.
    pub tram_2d: bool,
    /// Adaptive batch sizing (net engine only): the engine measures the
    /// per-flush serialization+handoff cost and the inter-arrival gap of
    /// remote sends, and re-derives the batch size that balances amortized
    /// flush overhead against batching delay (DESIGN.md §8). Batch size
    /// only moves packet boundaries, which the conformance contract
    /// explicitly allows to vary.
    pub adaptive: bool,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            enabled: true,
            max_batch: 64,
            tram_2d: false,
            adaptive: false,
        }
    }
}

/// Termination detector choice (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Completion detection: produce/consume counting scoped to the phase.
    #[default]
    CompletionDetection,
    /// Quiescence detection: global idleness. Functionally equivalent here
    /// but charged a higher synchronization cost by the performance model
    /// (it requires application-wide quiescence).
    QuiescenceDetection,
}

/// Full runtime configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of processing elements.
    pub n_pes: u32,
    /// Engine.
    pub mode: ExecMode,
    /// SMP topology.
    pub smp: SmpConfig,
    /// Aggregation settings.
    pub aggregation: AggregationConfig,
    /// Termination detector.
    pub sync: SyncMode,
    /// Fault schedule. Message-level faults (drop, dup, delay, reorder)
    /// are honoured only by [`ExecMode::VirtualTime`]; the *process-level*
    /// faults ([`FaultPlan::proc_kill`] / [`FaultPlan::proc_stall`]) are
    /// honoured by [`ExecMode::Net`], which injects them at worker spawn.
    /// Keep [`FaultPlan::none`] elsewhere (the default).
    pub faults: FaultPlan,
    /// Threaded/net-engine phase watchdog in seconds (`0` = disabled): if
    /// completion detection has not fired after this long, the coordinator
    /// panics with the detector's counters instead of spinning forever — a
    /// hung conformance run becomes a diagnosable failure, not a CI
    /// timeout.
    pub watchdog_secs: u16,
    /// Networked-engine settings, honoured only by [`ExecMode::Net`].
    pub net: NetConfig,
}

impl RuntimeConfig {
    /// A sequential runtime with `n_pes` simulated PEs and all §IV
    /// optimizations on.
    pub fn sequential(n_pes: u32) -> Self {
        RuntimeConfig {
            n_pes,
            mode: ExecMode::Sequential,
            smp: SmpConfig {
                pes_per_process: 4,
                comm_thread: true,
            },
            aggregation: AggregationConfig::default(),
            sync: SyncMode::CompletionDetection,
            faults: FaultPlan::none(0),
            watchdog_secs: 0,
            net: NetConfig::default(),
        }
    }

    /// A threaded runtime with `n_pes` OS threads.
    pub fn threaded(n_pes: u32) -> Self {
        RuntimeConfig {
            mode: ExecMode::Threads,
            ..Self::sequential(n_pes)
        }
    }

    /// A deterministic-simulation-testing runtime: `n_pes` virtual PEs on
    /// one thread, message delivery scheduled in virtual time under
    /// `plan`'s seeded fault schedule.
    pub fn dst(n_pes: u32, plan: FaultPlan) -> Self {
        RuntimeConfig {
            mode: ExecMode::VirtualTime,
            faults: plan,
            ..Self::sequential(n_pes)
        }
    }

    /// A networked multi-process runtime: `n_pes` PEs split evenly over
    /// `n_procs` OS processes connected by a loopback TCP mesh. PE ranges
    /// are contiguous per process (`SmpConfig::process_of` stays the
    /// single source of truth for PE→process mapping), and the default
    /// 30-second watchdog turns a hung socket into a diagnosable panic.
    pub fn net(n_pes: u32, n_procs: u32) -> Self {
        assert!(n_procs >= 1, "need at least one process");
        assert!(
            n_pes.is_multiple_of(n_procs),
            "n_pes ({n_pes}) must divide evenly over n_procs ({n_procs})"
        );
        RuntimeConfig {
            mode: ExecMode::Net,
            smp: SmpConfig {
                pes_per_process: n_pes / n_procs,
                comm_thread: true,
            },
            net: NetConfig {
                n_procs,
                ..NetConfig::default()
            },
            aggregation: AggregationConfig {
                adaptive: true,
                ..AggregationConfig::default()
            },
            watchdog_secs: 30,
            ..Self::sequential(n_pes)
        }
    }

    /// The paper's "RR no-opt" baseline: no aggregation, no SMP comm
    /// thread, QD instead of CD.
    pub fn no_opt(mut self) -> Self {
        self.aggregation.enabled = false;
        self.smp.comm_thread = false;
        self.smp.pes_per_process = 1;
        self.sync = SyncMode::QuiescenceDetection;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_mapping() {
        let smp = SmpConfig {
            pes_per_process: 4,
            comm_thread: true,
        };
        assert_eq!(smp.process_of(0), 0);
        assert_eq!(smp.process_of(3), 0);
        assert_eq!(smp.process_of(4), 1);
        assert!(smp.same_process(1, 3));
        assert!(!smp.same_process(3, 4));
    }

    #[test]
    fn zero_pes_per_process_is_safe() {
        let smp = SmpConfig {
            pes_per_process: 0,
            comm_thread: false,
        };
        assert_eq!(smp.process_of(7), 7);
    }

    #[test]
    fn net_config_splits_pes_contiguously() {
        let cfg = RuntimeConfig::net(8, 4);
        assert_eq!(cfg.mode, ExecMode::Net);
        assert_eq!(cfg.smp.pes_per_process, 2);
        assert_eq!(cfg.smp.process_of(3), 1);
        assert_eq!(cfg.smp.process_of(7), 3);
        assert_eq!(cfg.net.n_procs, 4);
        assert_eq!(cfg.net.kill_rank, u32::MAX);
        assert!(cfg.watchdog_secs > 0, "net mode must default to a watchdog");
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn net_config_rejects_uneven_split() {
        let _ = RuntimeConfig::net(5, 2);
    }

    #[test]
    fn net_transport_parses_overrides() {
        assert_eq!(NetTransport::parse("tcp"), Some(NetTransport::Tcp));
        assert_eq!(NetTransport::parse(" SHM "), Some(NetTransport::Shm));
        assert_eq!(NetTransport::parse("Mixed"), Some(NetTransport::Mixed));
        assert_eq!(NetTransport::parse("auto"), Some(NetTransport::Auto));
        assert_eq!(NetTransport::parse("udp"), None);
    }

    #[test]
    fn heartbeats_default_off_with_sane_timeout() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.heartbeat_interval_ms, 0, "explicit opt-in");
        assert!(cfg.heartbeat_timeout_ms >= 100);
    }

    #[test]
    fn net_defaults_pick_auto_transport_and_adaptive_batching() {
        let cfg = RuntimeConfig::net(4, 2);
        assert_eq!(cfg.net.transport, NetTransport::Auto);
        assert!(cfg.net.shm_ring_bytes >= 64 * 1024);
        assert!(cfg.aggregation.adaptive, "net runs adapt the batch size");
        // Other constructors keep the static batch size.
        assert!(!RuntimeConfig::sequential(4).aggregation.adaptive);
    }

    #[test]
    fn no_opt_strips_optimizations() {
        let cfg = RuntimeConfig::sequential(8).no_opt();
        assert!(!cfg.aggregation.enabled);
        assert!(!cfg.smp.comm_thread);
        assert_eq!(cfg.sync, SyncMode::QuiescenceDetection);
    }
}
