//! TRAM-style topological routing (§IV-C footnote).
//!
//! "The CHARM++ team is currently working on TRAM (Topological Routing and
//! Aggregation Module), which implements an application agnostic message
//! aggregation in the runtime." TRAM routes each message through a virtual
//! topology so that a PE aggregates into O(√P) lanes (one per row/column
//! peer of a 2D grid) instead of O(P) per-destination lanes — trading an
//! extra hop per message for far better aggregation at scale.
//!
//! This module provides the 2D grid and dimension-order (row-first) next-hop
//! function; the engines consult it when
//! [`crate::config::AggregationConfig::tram_2d`] is set, re-routing packet
//! envelopes that arrive at an intermediate PE.

/// A virtual 2D grid over `p` PEs, rows × cols with `cols = ⌈√p⌉`.
/// The grid may be ragged (the last row partially filled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2D {
    p: u32,
    cols: u32,
}

impl Grid2D {
    /// Grid over `p` PEs.
    pub fn new(p: u32) -> Self {
        let cols = (p.max(1) as f64).sqrt().ceil() as u32;
        Grid2D { p: p.max(1), cols }
    }

    /// Number of PEs.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Grid columns (≈ √p).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    #[inline]
    fn row(&self, pe: u32) -> u32 {
        pe / self.cols
    }

    #[inline]
    fn col(&self, pe: u32) -> u32 {
        pe % self.cols
    }

    /// Dimension-order next hop from `src` toward `dst`: first correct the
    /// column within `src`'s row, then travel the column. Falls back to a
    /// direct hop when the ragged corner of the grid would be addressed.
    /// Returns `dst` when one hop suffices.
    #[inline]
    pub fn next_hop(&self, src: u32, dst: u32) -> u32 {
        debug_assert!(src < self.p && dst < self.p);
        if src == dst {
            return dst;
        }
        if self.col(src) == self.col(dst) || self.row(src) == self.row(dst) {
            // Same row or column: one hop.
            return dst;
        }
        let intermediate = self.row(src) * self.cols + self.col(dst);
        if intermediate >= self.p {
            // Ragged corner: no such PE; go direct.
            dst
        } else {
            intermediate
        }
    }

    /// Upper bound on the number of distinct next hops a PE uses
    /// (its row peers + its column peers).
    pub fn max_lanes(&self) -> u32 {
        let rows = self.p.div_ceil(self.cols);
        (self.cols - 1) + (rows - 1)
    }

    /// Number of hops a message takes from `src` to `dst` (1 or 2).
    pub fn hops(&self, src: u32, dst: u32) -> u32 {
        if src == dst {
            0
        } else if self.next_hop(src, dst) == dst {
            1
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_terminates_for_all_pairs() {
        for p in [1u32, 2, 3, 4, 7, 16, 17, 64, 100] {
            let g = Grid2D::new(p);
            for src in 0..p {
                for dst in 0..p {
                    let mut at = src;
                    let mut hops = 0;
                    while at != dst {
                        at = g.next_hop(at, dst);
                        hops += 1;
                        assert!(at < p, "hop out of range");
                        assert!(hops <= 2, "p={p} {src}→{dst} took >2 hops");
                    }
                    assert_eq!(hops, g.hops(src, dst));
                }
            }
        }
    }

    #[test]
    fn same_row_or_column_is_direct() {
        let g = Grid2D::new(16); // 4×4
        assert_eq!(g.next_hop(0, 3), 3); // same row
        assert_eq!(g.next_hop(0, 12), 12); // same column
        assert_eq!(g.next_hop(1, 1), 1);
    }

    #[test]
    fn diagonal_goes_via_row_corner() {
        let g = Grid2D::new(16); // 4×4: pe = 4·row + col
                                 // 0 (0,0) → 15 (3,3): first to (0,3) = 3.
        assert_eq!(g.next_hop(0, 15), 3);
        assert_eq!(g.next_hop(3, 15), 15);
        assert_eq!(g.hops(0, 15), 2);
    }

    #[test]
    fn lanes_scale_as_sqrt_p() {
        let g = Grid2D::new(1024);
        assert_eq!(g.cols(), 32);
        assert_eq!(g.max_lanes(), 62); // 31 + 31 ≪ 1023
        let small = Grid2D::new(4);
        assert_eq!(small.max_lanes(), 2);
    }

    #[test]
    fn single_pe() {
        let g = Grid2D::new(1);
        assert_eq!(g.next_hop(0, 0), 0);
        assert_eq!(g.hops(0, 0), 0);
    }

    #[test]
    fn ragged_corner_falls_back_to_direct() {
        // p = 7 → 3 columns, rows (0,1,2),(3,4,5),(6): routing 6 → 5 would
        // want intermediate (row 2, col 2) = pe 8, which does not exist.
        let g = Grid2D::new(7);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.next_hop(6, 5), 5, "missing corner must go direct");
        assert_eq!(g.hops(6, 5), 1);
        // The reverse direction has a real corner: 5 (row 1, col 2) → 6
        // (row 2, col 0) goes via (row 1, col 0) = pe 3.
        assert_eq!(g.next_hop(5, 6), 3);
        assert_eq!(g.hops(5, 6), 2);
    }

    #[test]
    fn ragged_grids_route_all_pairs_within_bounds() {
        // Ragged sizes around square and rectangular breakpoints: every
        // intermediate hop must exist and every route lands in ≤ 2 hops
        // (routing_terminates_for_all_pairs covers a sample; this pins the
        // raggedest cases near each breakpoint explicitly).
        for p in [5u32, 6, 7, 8, 10, 12, 13, 15, 21, 26, 37, 50, 65, 99] {
            let g = Grid2D::new(p);
            let rows = p.div_ceil(g.cols());
            assert!(g.cols() * rows >= p, "grid must cover all PEs");
            for src in 0..p {
                let mut lanes = std::collections::BTreeSet::new();
                for dst in 0..p {
                    if src == dst {
                        continue;
                    }
                    let hop = g.next_hop(src, dst);
                    assert!(hop < p, "p={p}: {src}→{dst} via missing {hop}");
                    lanes.insert(hop);
                    assert!(g.hops(src, dst) <= 2);
                }
                // The O(√p) lane promise holds exactly for sources whose
                // row is complete (their row corner always exists); only
                // sources in the ragged last row may degrade toward direct
                // sends.
                let row_complete = (src / g.cols() + 1) * g.cols() <= p;
                if row_complete {
                    assert!(
                        lanes.len() as u32 <= g.max_lanes(),
                        "p={p} src={src}: {} lanes exceeds √p bound",
                        lanes.len()
                    );
                }
            }
        }
    }
}
