//! Launcher/orchestrator: forks worker processes, wires the socket mesh,
//! and gives workers a way to find their place in the run.
//!
//! ## The SPMD re-exec model
//!
//! Chares are `Box<dyn Chare<M>>` — not serializable. Instead of shipping
//! objects, the launcher re-executes the *current binary*: every worker
//! runs the same driver code, rebuilds the same chare array (the
//! determinism contract of DESIGN.md §7 makes that reconstruction
//! bit-identical), and the engine keeps only the chares whose PE falls in
//! the worker's range. Workers are told who they are through environment
//! variables:
//!
//! * `EPISIM_NET_ROLE=worker` — this process is a worker.
//! * `EPISIM_NET_RANK` — its process rank (1-based).
//! * `EPISIM_NET_ADDR` — the root's loopback listener address.
//! * `EPISIM_NET_INVOCATION` — which net-runtime construction (0-based,
//!   counted per driver thread) this worker should join; earlier net
//!   constructions replay standalone, so a driver that builds several net
//!   runtimes in sequence still lines up. Drivers that want to skip the
//!   replay instead call [`worker_target`] and [`align_to_invocation`].
//! * `EPISIM_NET_KILL_PHASE` — optional fault injection: exit abruptly at
//!   this phase (the conformance suite's kill-one-worker control).
//! * `EPISIM_NET_CHILD_ARGS` — optional space-separated argv override for
//!   spawned workers. Without it, a worker spawned from a `cargo test`
//!   thread gets `[<test name>, --exact, --nocapture]` (libtest names the
//!   test's thread after the test), so the worker re-runs exactly one
//!   test; workers spawned from a `main` thread get no args and re-run the
//!   whole binary.

use crate::config::RuntimeConfig;
use crate::net::recovery::Backoff;
use crate::net::transport::{read_frame, write_frame};
use crate::net::wire::{Ctl, Hello};
use std::cell::Cell;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub(crate) const ENV_ROLE: &str = "EPISIM_NET_ROLE";
pub(crate) const ENV_RANK: &str = "EPISIM_NET_RANK";
pub(crate) const ENV_ADDR: &str = "EPISIM_NET_ADDR";
pub(crate) const ENV_INVOCATION: &str = "EPISIM_NET_INVOCATION";
pub(crate) const ENV_KILL_PHASE: &str = "EPISIM_NET_KILL_PHASE";
pub(crate) const ENV_CHILD_ARGS: &str = "EPISIM_NET_CHILD_ARGS";
/// File descriptor of the inherited shm ring region. Presence of this
/// variable IS the worker-side transport decision: the root resolves the
/// transport ([`crate::NetTransport`] + `ChareNetTransport` override) and
/// workers simply attach whatever region they were handed — there is no
/// way for one side to run shm while the other runs TCP.
pub(crate) const ENV_SHM_FD: &str = "EPISIM_NET_SHM_FD";
/// `"shm"` (all links ride the rings) or `"mixed"` (worker↔worker only).
pub(crate) const ENV_SHM_MODE: &str = "EPISIM_NET_SHM_MODE";
/// Fault injection: phase at which this worker goes silent (comm and
/// compute threads both sleep, sockets stay open — the SIGSTOP-equivalent
/// the stalled-peer detector classifies).
pub(crate) const ENV_STALL_PHASE: &str = "EPISIM_NET_STALL_PHASE";
/// Duration of the injected stall, milliseconds.
pub(crate) const ENV_STALL_MS: &str = "EPISIM_NET_STALL_MS";

thread_local! {
    /// Net-runtime constructions seen on this driver thread. Thread-local
    /// (not global) so parallel `cargo test` threads count independently —
    /// a worker re-runs exactly one test and must see that test's own
    /// sequence.
    static INVOCATION: Cell<u64> = const { Cell::new(0) };
}

/// In a worker process: the invocation index this worker must join, else
/// `None`. Drivers that construct several net runtimes use this to skip
/// straight to the target (guarding expensive root-only work behind
/// `worker_target().is_none()`), paired with [`align_to_invocation`].
pub fn worker_target() -> Option<u64> {
    if std::env::var(ENV_ROLE).ok()?.as_str() != "worker" {
        return None;
    }
    std::env::var(ENV_INVOCATION).ok()?.parse().ok()
}

/// Declare that the next net-runtime construction on this thread is
/// invocation `target` (used together with [`worker_target`] when a driver
/// skips the replay of earlier invocations).
pub fn align_to_invocation(target: u64) {
    INVOCATION.with(|c| c.set(target));
}

/// Allocate this thread's next invocation index.
pub(crate) fn next_invocation() -> u64 {
    INVOCATION.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    })
}

/// A worker's identity, parsed from the environment.
#[derive(Debug, Clone)]
pub(crate) struct WorkerEnv {
    pub rank: u32,
    pub addr: String,
    pub target: u64,
    pub kill_phase: Option<u64>,
    /// Fault injection: `(phase, ms)` at which this worker goes silent.
    pub stall: Option<(u64, u64)>,
    /// Inherited shm region fd, when the root chose a shm transport.
    pub shm_fd: Option<i32>,
    /// Worker↔worker links only ride the rings (root links stay TCP).
    pub shm_mixed: bool,
}

pub(crate) fn worker_env() -> Option<WorkerEnv> {
    if std::env::var(ENV_ROLE).ok()?.as_str() != "worker" {
        return None;
    }
    fn parse<T: std::str::FromStr>(k: &str) -> Option<T> {
        std::env::var(k).ok().and_then(|v| v.parse().ok())
    }
    Some(WorkerEnv {
        rank: parse(ENV_RANK)?,
        addr: std::env::var(ENV_ADDR).ok()?,
        target: parse(ENV_INVOCATION)?,
        kill_phase: parse(ENV_KILL_PHASE),
        stall: parse(ENV_STALL_PHASE).zip(parse(ENV_STALL_MS)),
        shm_fd: parse(ENV_SHM_FD),
        shm_mixed: std::env::var(ENV_SHM_MODE).is_ok_and(|m| m == "mixed"),
    })
}

/// Argv for spawned workers (see module docs).
fn child_args() -> Vec<String> {
    if let Ok(raw) = std::env::var(ENV_CHILD_ARGS) {
        return raw.split_whitespace().map(str::to_owned).collect();
    }
    match std::thread::current().name() {
        Some(name) if !name.is_empty() && name != "main" => vec![
            name.to_owned(),
            "--exact".to_owned(),
            "--nocapture".to_owned(),
        ],
        _ => Vec::new(),
    }
}

fn timeout_err(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("net setup timed out: {what}"),
    )
}

fn expect_ctl(sock: &mut TcpStream, what: &str) -> io::Result<Ctl> {
    let (kind, payload, _) = read_frame(sock)?;
    Ctl::decode(kind, &payload).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed {what} frame (kind {kind})"),
        )
    })
}

fn send_ctl(sock: &mut TcpStream, ctl: &Ctl) -> io::Result<()> {
    let (kind, payload) = ctl.encode();
    write_frame(sock, kind, &payload).map(|_| ())
}

/// Root side: spawn workers, accept their HELLOs, broadcast the peer list,
/// wait for every MESH_OK. Returns the per-rank sockets (non-blocking,
/// nodelay) and the child handles.
///
/// `shm` carries the ring region's fd and mode string (`"shm"`/`"mixed"`)
/// when the root chose a shared-memory transport; the fd is deliberately
/// *not* close-on-exec yet so children inherit it, and the engine flips
/// `FD_CLOEXEC` back on right after this returns.
#[allow(clippy::type_complexity)]
pub(crate) fn spawn_mesh_root(
    cfg: &RuntimeConfig,
    invocation: u64,
    shm: Option<(i32, &'static str)>,
) -> io::Result<(Vec<(u32, TcpStream)>, Vec<Child>)> {
    let n_procs = cfg.net.n_procs;
    let deadline = Instant::now() + Duration::from_millis(u64::from(cfg.net.connect_timeout_ms));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let exe = std::env::current_exe()?;
    let args = child_args();
    let mut children = Vec::with_capacity(n_procs as usize - 1);
    for rank in 1..n_procs {
        let mut cmd = Command::new(&exe);
        cmd.args(&args)
            .env(ENV_ROLE, "worker")
            .env(ENV_RANK, rank.to_string())
            .env(ENV_ADDR, addr.to_string())
            .env(ENV_INVOCATION, invocation.to_string())
            .env_remove(ENV_KILL_PHASE)
            .env_remove(ENV_STALL_PHASE)
            .env_remove(ENV_STALL_MS)
            .env_remove(ENV_SHM_FD)
            .env_remove(ENV_SHM_MODE)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some((fd, mode)) = shm {
            cmd.env(ENV_SHM_FD, fd.to_string()).env(ENV_SHM_MODE, mode);
        }
        if cfg.net.kill_rank == rank {
            cmd.env(ENV_KILL_PHASE, cfg.net.kill_phase.to_string());
        } else if cfg.faults.proc_kill_rank == rank {
            // Process-level fault plan: same kill mechanism, scheduled via
            // the chaos knobs instead of the net-specific legacy pair.
            cmd.env(ENV_KILL_PHASE, cfg.faults.proc_kill_phase.to_string());
        }
        if cfg.faults.proc_stall_rank == rank {
            cmd.env(ENV_STALL_PHASE, cfg.faults.proc_stall_phase.to_string())
                .env(ENV_STALL_MS, cfg.faults.proc_stall_ms.to_string());
        }
        children.push(cmd.spawn()?);
    }

    // Accept one HELLO per worker; bail early if a child dies during setup.
    let mut by_rank: Vec<Option<(TcpStream, u16)>> = (0..n_procs).map(|_| None).collect();
    let mut accepted = 0u32;
    while accepted + 1 < n_procs {
        match listener.accept() {
            Ok((mut sock, _)) => {
                sock.set_nonblocking(false)?;
                sock.set_read_timeout(Some(Duration::from_secs(10)))?;
                match expect_ctl(&mut sock, "HELLO")? {
                    Ctl::Hello(h) => {
                        validate_hello(&h, invocation, cfg)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                        if by_rank[h.rank as usize].is_some() {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("duplicate HELLO from rank {}", h.rank),
                            ));
                        }
                        by_rank[h.rank as usize] = Some((sock, h.listen_port));
                        accepted += 1;
                    }
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected HELLO, got {other:?}"),
                        ))
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (i, child) in children.iter_mut().enumerate() {
                    if let Some(status) = child.try_wait()? {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            format!("worker rank {} exited during setup: {status}", i + 1),
                        ));
                    }
                }
                if Instant::now() > deadline {
                    return Err(timeout_err("waiting for worker HELLOs"));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }

    let peers: Vec<(u32, u16)> = by_rank
        .iter()
        .enumerate()
        .filter_map(|(rank, slot)| slot.as_ref().map(|(_, port)| (rank as u32, *port)))
        .collect();
    let mut sockets = Vec::with_capacity(n_procs as usize - 1);
    for (rank, slot) in by_rank.into_iter().enumerate() {
        if let Some((mut sock, _)) = slot {
            send_ctl(&mut sock, &Ctl::Peers(peers.clone()))?;
            sockets.push((rank as u32, sock));
        }
    }
    // Wait for every worker's MESH_OK so no phase starts on a half-wired
    // mesh.
    for (rank, sock) in &mut sockets {
        match expect_ctl(sock, "MESH_OK")? {
            Ctl::MeshOk { rank: r } if r == *rank => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected MESH_OK from rank {rank}, got {other:?}"),
                ))
            }
        }
    }
    for (_, sock) in &mut sockets {
        sock.set_nodelay(true)?;
        sock.set_read_timeout(None)?;
        sock.set_nonblocking(true)?;
    }
    Ok((sockets, children))
}

fn validate_hello(h: &Hello, invocation: u64, cfg: &RuntimeConfig) -> Result<(), String> {
    if h.invocation != invocation {
        return Err(format!(
            "rank {} joined invocation {} but root is at {} — worker replay desynchronized",
            h.rank, h.invocation, invocation
        ));
    }
    if h.n_procs != cfg.net.n_procs || h.n_pes != cfg.n_pes {
        return Err(format!(
            "rank {} configured {} procs × {} PEs, root has {} × {} — SPMD drivers diverged",
            h.rank, h.n_procs, h.n_pes, cfg.net.n_procs, cfg.n_pes
        ));
    }
    if h.rank == 0 || h.rank >= cfg.net.n_procs {
        return Err(format!("rank {} out of range", h.rank));
    }
    Ok(())
}

/// Worker side: connect to the root, exchange HELLO/PEERS, inter-connect
/// with the other workers, confirm with MESH_OK. Returns per-rank sockets
/// (non-blocking, nodelay), root at rank 0.
pub(crate) fn connect_mesh_worker(
    env: &WorkerEnv,
    cfg: &RuntimeConfig,
) -> io::Result<Vec<(u32, TcpStream)>> {
    let deadline = Instant::now() + Duration::from_millis(u64::from(cfg.net.connect_timeout_ms));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let my_port = listener.local_addr()?.port();

    let mut root = connect_retry(&env.addr, deadline)?;
    root.set_read_timeout(Some(Duration::from_secs(10)))?;
    send_ctl(
        &mut root,
        &Ctl::Hello(Hello {
            invocation: env.target,
            rank: env.rank,
            n_procs: cfg.net.n_procs,
            n_pes: cfg.n_pes,
            listen_port: my_port,
        }),
    )?;
    let peers = match expect_ctl(&mut root, "PEERS")? {
        Ctl::Peers(p) => p,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected PEERS, got {other:?}"),
            ))
        }
    };

    let mut sockets: Vec<(u32, TcpStream)> = Vec::with_capacity(cfg.net.n_procs as usize - 1);
    // Connect outward to lower-ranked workers…
    for &(rank, port) in peers.iter().filter(|(r, _)| *r != 0 && *r < env.rank) {
        let mut sock = connect_retry(&format!("127.0.0.1:{port}"), deadline)?;
        send_ctl(
            &mut sock,
            &Ctl::PeerHello {
                invocation: env.target,
                rank: env.rank,
            },
        )?;
        sockets.push((rank, sock));
    }
    // …and accept from higher-ranked ones.
    let expect_inbound = peers.iter().filter(|(r, _)| *r > env.rank).count();
    listener.set_nonblocking(true)?;
    for _ in 0..expect_inbound {
        let mut sock = accept_retry(&listener, deadline)?;
        sock.set_nonblocking(false)?;
        sock.set_read_timeout(Some(Duration::from_secs(10)))?;
        match expect_ctl(&mut sock, "PEER_HELLO")? {
            Ctl::PeerHello { invocation, rank } if invocation == env.target => {
                sockets.push((rank, sock));
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad PEER_HELLO: {other:?}"),
                ))
            }
        }
    }

    send_ctl(&mut root, &Ctl::MeshOk { rank: env.rank })?;
    sockets.push((0, root));
    for (_, sock) in &mut sockets {
        sock.set_nodelay(true)?;
        sock.set_read_timeout(None)?;
        sock.set_nonblocking(true)?;
    }
    Ok(sockets)
}

/// Deterministic seed for a retry schedule, derived from what we are
/// retrying against (FNV-1a) so concurrent retry loops decorrelate.
fn retry_seed(tag: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Retry dialing `addr` until `deadline`, sleeping a jittered exponential
/// backoff between attempts (2 ms base, 100 ms cap). A fixed short
/// interval stampedes the root's accept queue when many workers start at
/// once — exactly the reconnect storm the jitter exists to break up. On
/// expiry the error reports how many attempts were made.
fn connect_retry(addr: &str, deadline: Instant) -> io::Result<TcpStream> {
    let mut backoff = Backoff::new(2, 100, retry_seed(addr));
    let mut attempts = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                attempts += 1;
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "connect to {addr} timed out after {attempts} attempts (last error: {e})"
                        ),
                    ));
                }
                backoff.sleep(attempts - 1);
            }
        }
    }
}

/// Accept-side twin of [`connect_retry`]: jittered exponential poll of the
/// nonblocking listener (1 ms base, 50 ms cap), attempt count surfaced on
/// deadline expiry.
fn accept_retry(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    let seed = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    let mut backoff = Backoff::new(1, 50, u64::from(seed));
    let mut attempts = 0u32;
    loop {
        match listener.accept() {
            Ok((sock, _)) => return Ok(sock),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                attempts += 1;
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!(
                            "net setup timed out: waiting for peer connections \
                             ({attempts} accept attempts)"
                        ),
                    ));
                }
                backoff.sleep(attempts - 1);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_counter_is_per_thread() {
        assert_eq!(next_invocation(), 0);
        assert_eq!(next_invocation(), 1);
        let other = std::thread::spawn(|| next_invocation()).join().unwrap();
        assert_eq!(other, 0, "fresh thread starts at 0");
        align_to_invocation(7);
        assert_eq!(next_invocation(), 7);
        assert_eq!(next_invocation(), 8);
    }

    #[test]
    fn worker_env_absent_outside_workers() {
        // The test process is never spawned with the worker env.
        assert!(worker_target().is_none());
        assert!(worker_env().is_none());
    }

    #[test]
    fn connect_retry_reports_attempts_on_expiry() {
        // Nothing listens on port 1; loopback connects fail immediately,
        // so the loop retries with backoff until the deadline.
        let deadline = Instant::now() + Duration::from_millis(30);
        let err = connect_retry("127.0.0.1:1", deadline).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(msg.contains("attempts"), "attempt count missing: {msg}");
    }

    #[test]
    fn accept_retry_reports_attempts_on_expiry() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let err = accept_retry(&listener, Instant::now() + Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let msg = err.to_string();
        assert!(
            msg.contains("accept attempts"),
            "attempt count missing: {msg}"
        );
    }

    #[test]
    fn hello_validation_catches_divergence() {
        let cfg = RuntimeConfig::net(4, 2);
        let good = Hello {
            invocation: 3,
            rank: 1,
            n_procs: 2,
            n_pes: 4,
            listen_port: 1,
        };
        assert!(validate_hello(&good, 3, &cfg).is_ok());
        assert!(validate_hello(&good, 4, &cfg)
            .unwrap_err()
            .contains("desynchronized"));
        let bad_topo = Hello { n_pes: 8, ..good };
        assert!(validate_hello(&bad_topo, 3, &cfg)
            .unwrap_err()
            .contains("diverged"));
        let bad_rank = Hello { rank: 2, ..good };
        assert!(validate_hello(&bad_rank, 3, &cfg)
            .unwrap_err()
            .contains("out of range"));
    }
}
