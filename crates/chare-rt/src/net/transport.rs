//! Length-prefixed framing over loopback TCP and shared-memory rings.
//!
//! Every frame is `[len: u32 LE][kind: u8][payload: len-1 bytes]`. The
//! blocking helpers serve mesh setup (HELLO/PEERS handshakes, where the
//! socket still has a read timeout); [`FrameBuf`] serves the steady state,
//! where the comm thread polls non-blocking byte sources — TCP sockets or
//! [`crate::net::shm`] ring consumers, both of which speak `WouldBlock` —
//! and reassembles frames from whatever arrives. [`write_frames`] is the
//! vectored fast path: it flushes a backlog of frames in as few
//! `writev`-style syscalls as the kernel allows.

use std::io::{self, IoSlice, Read, Write};

/// Ceiling on a single frame, far above anything the engine emits; a
/// length prefix beyond it means a corrupt or hostile stream.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame; returns total bytes written (header + body).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let body_len = payload
        .len()
        .checked_add(1)
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&(body_len as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    Ok(4 + body_len as u64)
}

/// Write many frames in one vectored burst (`writev`-style): each frame
/// contributes two [`IoSlice`]s — its 5-byte header and its payload — and
/// the whole backlog goes to the kernel in as few syscalls as it will
/// take. Returns total bytes written. Partial writes are resumed from the
/// exact byte where the kernel stopped, so the stream never tears a frame.
pub fn write_frames(w: &mut impl Write, frames: &[(u8, &[u8])]) -> io::Result<u64> {
    let mut headers = Vec::with_capacity(frames.len());
    let mut total = 0u64;
    for (kind, payload) in frames {
        let body_len = payload
            .len()
            .checked_add(1)
            .filter(|&n| n <= MAX_FRAME)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
        let len = (body_len as u32).to_le_bytes();
        headers.push([len[0], len[1], len[2], len[3], *kind]); // simlint: allow(R3) -- len is a [u8; 4], indices 0..=3 are in range by construction
        total += 4 + body_len as u64;
    }
    // `skip` tracks how many bytes of the logical stream are already on
    // the wire; each retry rebuilds the slice list from that offset.
    let mut skip = 0u64;
    while skip < total {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(frames.len() * 2);
        let mut pos = 0u64;
        for (header, (_, payload)) in headers.iter().zip(frames) {
            for part in [&header[..], *payload] {
                let end = pos + part.len() as u64;
                if end > skip {
                    let cut = (skip.saturating_sub(pos)) as usize;
                    slices.push(IoSlice::new(&part[cut..]));
                }
                pos = end;
            }
        }
        match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-flush",
                ))
            }
            Ok(n) => skip += n as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // The sockets are non-blocking; a full kernel buffer mid-flush
            // must not abort the stream (the resume offset would be lost).
            // Yield briefly and retry from the same byte.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

/// Blocking read of one frame (setup path; honours the socket's read
/// timeout). Returns `(kind, payload, total bytes read)`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if body_len == 0 || body_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {body_len}"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let kind = body[0]; // simlint: allow(R3) -- body_len checked nonzero above, so index 0 exists
    body.remove(0);
    Ok((kind, body, 4 + body_len as u64))
}

/// What one [`FrameBuf::poll`] produced.
#[derive(Debug, Default)]
pub struct Polled {
    /// Complete frames, in arrival order, as `(kind, payload)`.
    pub frames: Vec<(u8, Vec<u8>)>,
    /// Raw bytes read off the socket (for the wire counters).
    pub bytes: u64,
    /// The peer closed the connection. Frames read in the same poll are
    /// still delivered — a peer may legitimately write its final frames
    /// and close immediately, and those frames must not be lost.
    pub eof: bool,
}

/// Per-socket reassembly buffer for non-blocking reads.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// Read whatever is available without blocking and return any frames
    /// completed by it. `Err` means a corrupt stream (fatal); EOF is
    /// reported via [`Polled::eof`] *after* the frames that preceded it.
    /// Works over any non-blocking byte source that reports emptiness as
    /// `WouldBlock` — TCP sockets and shm ring consumers alike.
    pub fn poll(&mut self, sock: &mut impl Read) -> io::Result<Polled> {
        let mut out = Polled::default();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match sock.read(&mut chunk) {
                Ok(0) => {
                    out.eof = true;
                    break;
                }
                Ok(n) => {
                    out.bytes += n as u64;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.drain_complete(&mut out)?;
        Ok(out)
    }

    fn drain_complete(&mut self, out: &mut Polled) -> io::Result<()> {
        let mut offset = 0usize;
        loop {
            let rest = &self.buf[offset..];
            if rest.len() < 4 {
                break;
            }
            let body_len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize; // simlint: allow(R3) -- rest.len() >= 4 checked two lines up
            if body_len == 0 || body_len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad frame length {body_len}"),
                ));
            }
            if rest.len() < 4 + body_len {
                break;
            }
            let kind = rest[4]; // simlint: allow(R3) -- rest.len() >= 4 + body_len with body_len >= 1 checked above
            out.frames.push((kind, rest[5..4 + body_len].to_vec()));
            offset += 4 + body_len;
        }
        if offset > 0 {
            self.buf.drain(..offset);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn vectored_write_matches_sequential_framing() {
        let frames: Vec<(u8, Vec<u8>)> = vec![
            (1, vec![0xAB; 3]),
            (2, Vec::new()),
            (3, (0..=255u8).collect()),
        ];
        let mut want = Vec::new();
        for (k, p) in &frames {
            write_frame(&mut want, *k, p).unwrap();
        }
        let refs: Vec<(u8, &[u8])> = frames.iter().map(|(k, p)| (*k, p.as_slice())).collect();
        let mut got = Vec::new();
        let n = write_frames(&mut got, &refs).unwrap();
        assert_eq!(got, want, "vectored and sequential bytes must agree");
        assert_eq!(n, want.len() as u64);
    }

    /// A writer that accepts at most 3 bytes per call forces `write_frames`
    /// through its partial-write resume path on every iteration.
    struct Dribble(Vec<u8>);
    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        let frames: Vec<(u8, Vec<u8>)> = vec![(7, vec![0x11; 70]), (8, vec![0x22; 5])];
        let refs: Vec<(u8, &[u8])> = frames.iter().map(|(k, p)| (*k, p.as_slice())).collect();
        let mut sink = Dribble(Vec::new());
        write_frames(&mut sink, &refs).unwrap();
        let mut want = Vec::new();
        for (k, p) in &frames {
            write_frame(&mut want, *k, p).unwrap();
        }
        assert_eq!(sink.0, want);
    }

    #[test]
    fn blocking_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, 7, b"hello").unwrap();
            write_frame(&mut s, 9, &[]).unwrap();
        });
        let (mut sock, _) = listener.accept().unwrap();
        let (kind, payload, n) = read_frame(&mut sock).unwrap();
        assert_eq!((kind, payload.as_slice(), n), (7, b"hello".as_slice(), 10));
        let (kind, payload, n) = read_frame(&mut sock).unwrap();
        assert_eq!((kind, payload.len(), n), (9, 0, 5));
        writer.join().unwrap();
    }

    #[test]
    fn nonblocking_reassembly_across_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Two frames written in awkward chunks, including a split header.
        let mut stream_bytes = Vec::new();
        write_frame(&mut stream_bytes, 1, &[0xAA; 300]).unwrap();
        write_frame(&mut stream_bytes, 2, b"tail").unwrap();
        let mut fb = FrameBuf::default();
        let mut got = Vec::new();
        for chunk in stream_bytes.chunks(7) {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            // Give loopback a moment to deliver, then poll.
            std::thread::sleep(std::time::Duration::from_millis(1));
            got.extend(fb.poll(&mut server).unwrap().frames);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1, vec![0xAA; 300]);
        assert_eq!(got[1], (2, b"tail".to_vec()));
    }

    #[test]
    fn eof_is_flagged_but_final_frames_survive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        // Peer writes its last frame and closes immediately — the frame
        // must be delivered alongside the EOF flag, not swallowed by it.
        write_frame(&mut client, 11, b"bye").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut fb = FrameBuf::default();
        let polled = fb.poll(&mut server).unwrap();
        assert!(polled.eof, "close must be visible");
        assert_eq!(polled.frames, vec![(11, b"bye".to_vec())]);
        // A second poll on the dead socket is pure EOF.
        let polled = fb.poll(&mut server).unwrap();
        assert!(polled.eof);
        assert!(polled.frames.is_empty());
    }

    #[test]
    fn corrupt_length_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(&[0, 0, 0, 0, 0, 0, 0, 0]).unwrap(); // zero length
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut fb = FrameBuf::default();
        assert!(fb.poll(&mut server).is_err());
    }
}
