//! Length-prefixed framing over loopback TCP.
//!
//! Every frame is `[len: u32 LE][kind: u8][payload: len-1 bytes]`. The
//! blocking helpers serve mesh setup (HELLO/PEERS handshakes, where the
//! socket still has a read timeout); [`FrameBuf`] serves the steady state,
//! where the comm thread polls non-blocking sockets and reassembles frames
//! from whatever the kernel hands it.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Ceiling on a single frame, far above anything the engine emits; a
/// length prefix beyond it means a corrupt or hostile stream.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one frame; returns total bytes written (header + body).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let body_len = payload
        .len()
        .checked_add(1)
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&(body_len as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    Ok(4 + body_len as u64)
}

/// Blocking read of one frame (setup path; honours the socket's read
/// timeout). Returns `(kind, payload, total bytes read)`.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>, u64)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if body_len == 0 || body_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {body_len}"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    let kind = body[0]; // simlint: allow(R3) -- body_len checked nonzero above, so index 0 exists
    body.remove(0);
    Ok((kind, body, 4 + body_len as u64))
}

/// What one [`FrameBuf::poll`] produced.
#[derive(Debug, Default)]
pub struct Polled {
    /// Complete frames, in arrival order, as `(kind, payload)`.
    pub frames: Vec<(u8, Vec<u8>)>,
    /// Raw bytes read off the socket (for the wire counters).
    pub bytes: u64,
    /// The peer closed the connection. Frames read in the same poll are
    /// still delivered — a peer may legitimately write its final frames
    /// and close immediately, and those frames must not be lost.
    pub eof: bool,
}

/// Per-socket reassembly buffer for non-blocking reads.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// Read whatever is available without blocking and return any frames
    /// completed by it. `Err` means a corrupt stream (fatal); EOF is
    /// reported via [`Polled::eof`] *after* the frames that preceded it.
    pub fn poll(&mut self, sock: &mut TcpStream) -> io::Result<Polled> {
        let mut out = Polled::default();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match sock.read(&mut chunk) {
                Ok(0) => {
                    out.eof = true;
                    break;
                }
                Ok(n) => {
                    out.bytes += n as u64;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.drain_complete(&mut out)?;
        Ok(out)
    }

    fn drain_complete(&mut self, out: &mut Polled) -> io::Result<()> {
        let mut offset = 0usize;
        loop {
            let rest = &self.buf[offset..];
            if rest.len() < 4 {
                break;
            }
            let body_len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize; // simlint: allow(R3) -- rest.len() >= 4 checked two lines up
            if body_len == 0 || body_len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad frame length {body_len}"),
                ));
            }
            if rest.len() < 4 + body_len {
                break;
            }
            let kind = rest[4]; // simlint: allow(R3) -- rest.len() >= 4 + body_len with body_len >= 1 checked above
            out.frames.push((kind, rest[5..4 + body_len].to_vec()));
            offset += 4 + body_len;
        }
        if offset > 0 {
            self.buf.drain(..offset);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn blocking_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, 7, b"hello").unwrap();
            write_frame(&mut s, 9, &[]).unwrap();
        });
        let (mut sock, _) = listener.accept().unwrap();
        let (kind, payload, n) = read_frame(&mut sock).unwrap();
        assert_eq!((kind, payload.as_slice(), n), (7, b"hello".as_slice(), 10));
        let (kind, payload, n) = read_frame(&mut sock).unwrap();
        assert_eq!((kind, payload.len(), n), (9, 0, 5));
        writer.join().unwrap();
    }

    #[test]
    fn nonblocking_reassembly_across_partial_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // Two frames written in awkward chunks, including a split header.
        let mut stream_bytes = Vec::new();
        write_frame(&mut stream_bytes, 1, &[0xAA; 300]).unwrap();
        write_frame(&mut stream_bytes, 2, b"tail").unwrap();
        let mut fb = FrameBuf::default();
        let mut got = Vec::new();
        for chunk in stream_bytes.chunks(7) {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            // Give loopback a moment to deliver, then poll.
            std::thread::sleep(std::time::Duration::from_millis(1));
            got.extend(fb.poll(&mut server).unwrap().frames);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 1);
        assert_eq!(got[0].1, vec![0xAA; 300]);
        assert_eq!(got[1], (2, b"tail".to_vec()));
    }

    #[test]
    fn eof_is_flagged_but_final_frames_survive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        // Peer writes its last frame and closes immediately — the frame
        // must be delivered alongside the EOF flag, not swallowed by it.
        write_frame(&mut client, 11, b"bye").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut fb = FrameBuf::default();
        let polled = fb.poll(&mut server).unwrap();
        assert!(polled.eof, "close must be visible");
        assert_eq!(polled.frames, vec![(11, b"bye".to_vec())]);
        // A second poll on the dead socket is pure EOF.
        let polled = fb.poll(&mut server).unwrap();
        assert!(polled.eof);
        assert!(polled.frames.is_empty());
    }

    #[test]
    fn corrupt_length_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(&[0, 0, 0, 0, 0, 0, 0, 0]).unwrap(); // zero length
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut fb = FrameBuf::default();
        assert!(fb.poll(&mut server).is_err());
    }
}
