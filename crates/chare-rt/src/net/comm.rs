//! The per-process communication thread (§IV-A's dedicated comm thread,
//! made real). It owns every socket of the process: it drains the compute
//! side's outbound channel onto the wire, reassembles inbound frames,
//! deserializes BATCH payloads off the compute thread, answers
//! completion-detection probes from the shared counters without involving
//! compute at all, and keeps the wire counters that end up in
//! [`crate::stats::PeStats`].

use crate::chare::{ChareId, Message};
use crate::net::recovery::PeerHealth;
use crate::net::shm::Doorbell;
use crate::net::transport::{write_frame, write_frames, FrameBuf};
use crate::net::wire::{self, Ctl};
use crate::net::TransportError;
use crate::stats::{PeStats, ReductionSlots};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared between the compute thread and its comm thread.
#[derive(Debug, Default)]
pub struct CommShared {
    /// Wire envelopes this process has produced (sent) this phase.
    /// Incremented by compute *before* the frame is handed to the comm
    /// thread, so a probe reply can never under-count in-flight messages.
    pub produced: AtomicU64,
    /// Wire envelopes this process has consumed (processed) this phase.
    pub consumed: AtomicU64,
    /// Compute-side idle flag: queues drained, lanes flushed, inbound
    /// empty. Maintained by compute only.
    pub idle: AtomicBool,
    /// The phase compute is currently in; probes for any other phase are
    /// answered not-idle.
    pub cur_phase: AtomicU64,
    /// Set by compute to stop the comm thread (after the outbound channel
    /// has been drained onto the wire).
    pub stop: AtomicBool,
    /// First transport failure, if any; compute checks this every loop.
    pub failed: Mutex<Option<TransportError>>,
    /// Frames written to sockets.
    pub frames_sent: AtomicU64,
    /// Frames read from sockets.
    pub frames_recv: AtomicU64,
    /// Bytes written (including frame headers).
    pub bytes_sent: AtomicU64,
    /// Bytes read (including frame headers).
    pub bytes_recv: AtomicU64,
    /// Socket writes that carried ≥2 frames in one vectored flush.
    pub coalesced_flushes: AtomicU64,
    /// Nanoseconds spent inside socket flushes (cumulative across phases;
    /// the adaptive batch controller consumes deltas of this).
    pub flush_ns: AtomicU64,
    /// Root only: latest CD reply per worker, indexed by `rank - 1`.
    pub replies: Mutex<Vec<CdReplyState>>,
    /// Fault injection: when nonzero, the comm thread sleeps this many
    /// milliseconds (once, resetting the cell) without touching any
    /// socket — the silent-but-connected window the process-stall fault
    /// uses. The compute thread sleeps the same window, so the process is
    /// indistinguishable from one that received SIGSTOP.
    pub stall_ms: AtomicU64,
    /// Per-peer liveness classification, indexed by rank (root only;
    /// updated by the failure detector before it records the failure, so
    /// the surfaced [`TransportError`] and this table always agree).
    pub health: Mutex<Vec<PeerHealth>>,
}

/// The latest completion-detection reply from one worker.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdReplyState {
    /// Wave this reply answered (0 = never replied).
    pub wave: u64,
    /// Worker's produced counter at reply time.
    pub produced: u64,
    /// Worker's consumed counter at reply time.
    pub consumed: u64,
    /// Worker's idle flag at reply time.
    pub idle: bool,
}

impl CommShared {
    /// Record a failure (first one wins) — every subsequent compute-side
    /// loop iteration will see it and abort the run.
    pub fn fail(&self, msg: String) {
        let mut f = lock_recover(&self.failed);
        if f.is_none() {
            *f = Some(TransportError(msg));
        }
    }

    /// The recorded failure, if any.
    pub fn failure(&self) -> Option<TransportError> {
        lock_recover(&self.failed).clone()
    }

    /// The CD reply table, recovering from a poisoned lock: the flag
    /// state is plain-old-data, so a panic elsewhere never invalidates it
    /// and the transport must keep limping toward a clean error report.
    pub fn replies(&self) -> MutexGuard<'_, Vec<CdReplyState>> {
        lock_recover(&self.replies)
    }

    /// The failure detector's per-rank classification (root only; every
    /// entry is [`PeerHealth::Alive`] until a failure is recorded).
    pub fn peer_health(&self) -> Vec<PeerHealth> {
        lock_recover(&self.health).clone()
    }

    fn set_health(&self, rank: u32, h: PeerHealth) {
        let mut v = lock_recover(&self.health);
        if let Some(slot) = v.get_mut(rank as usize) {
            *slot = h;
        }
    }
}

/// Failure-detector settings handed to [`spawn`]. Probes originate from
/// the root's comm thread only; every comm thread answers them.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatCfg {
    /// Gap between HEARTBEAT probes.
    pub interval: Duration,
    /// Silence threshold after which a peer is declared stalled.
    pub timeout: Duration,
}

/// Lock a mutex, recovering the data from a poisoned lock instead of
/// panicking (transport paths must never add panics of their own).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Events the comm thread hands to compute.
#[derive(Debug)]
pub enum Event<M: Message> {
    /// A decoded application batch.
    Batch {
        /// Phase the sender stamped on the batch.
        phase: u64,
        /// The envelopes.
        envelopes: Vec<(ChareId, M)>,
    },
    /// Root told us to enter a phase.
    PhaseStart {
        /// 1-based phase number.
        phase: u64,
        /// Topology check: chare count.
        n_chares: u32,
        /// Topology check: chare→PE map hash.
        map_hash: u64,
    },
    /// Root's completion detection fired.
    PhaseEnd {
        /// The finished phase.
        phase: u64,
    },
    /// Root's merged phase outcome.
    PhaseResult {
        /// Merged reductions.
        reductions: ReductionSlots,
        /// All PEs' counters.
        per_pe: Vec<PeStats>,
    },
    /// A worker's end-of-phase counters (root side).
    Stats {
        /// Reporting worker.
        rank: u32,
        /// Its reduction contributions.
        reductions: ReductionSlots,
        /// Its `(global pe, counters)` pairs.
        per_pe: Vec<(u32, PeStats)>,
    },
    /// Root is tearing down.
    Shutdown,
    /// A socket died or a frame failed to decode. Fatal.
    TransportError(TransportError),
}

/// Compute's handle on the comm thread.
pub struct CommHandle<M: Message> {
    /// Outbound frames: `(destination rank, kind, payload)`.
    pub out_tx: Sender<(u32, u8, Bytes)>,
    /// Inbound events.
    pub in_rx: Receiver<Event<M>>,
    /// Shared counters and flags.
    pub shared: Arc<CommShared>,
    /// The thread itself (joined on teardown).
    pub join: Option<JoinHandle<()>>,
}

struct Peer {
    sock: TcpStream,
    buf: FrameBuf,
    dead: bool,
}

/// The comm thread's channel to compute. Every send also rings compute's
/// doorbell (when the shm transport is active) so a futex-parked compute
/// thread wakes for TCP-delivered events, not just ring pushes.
struct Inbox<M: Message> {
    tx: Sender<Event<M>>,
    bell: Option<Doorbell>,
}

impl<M: Message> Inbox<M> {
    fn send(&self, ev: Event<M>) {
        let _ = self.tx.send(ev);
        if let Some(b) = &self.bell {
            b.ring();
        }
    }
}

/// Spawn the comm thread over an established socket set. `my_rank` is this
/// process's rank (used for CD replies); `sockets` maps peer rank →
/// connected non-blocking stream; `bell` is compute's own doorbell when
/// the shm transport is active (rung after every delivered event). Errors
/// (the OS refusing a thread) are returned, not panicked, so the engine
/// can surface them as a [`TransportError`].
pub fn spawn<M: Message>(
    my_rank: u32,
    sockets: Vec<(u32, TcpStream)>,
    bell: Option<Doorbell>,
    hb: Option<HeartbeatCfg>,
) -> std::io::Result<CommHandle<M>> {
    let (out_tx, out_rx) = unbounded::<(u32, u8, Bytes)>();
    let (in_tx, in_rx) = unbounded::<Event<M>>();
    let shared = Arc::new(CommShared::default());
    {
        let mut replies = shared.replies();
        let max_rank = sockets.iter().map(|(r, _)| *r).max().unwrap_or(0);
        replies.resize_with(max_rank as usize, CdReplyState::default);
        let mut health = lock_recover(&shared.health);
        health.resize(max_rank as usize + 1, PeerHealth::Alive);
    }
    let shared2 = shared.clone();
    let inbox = Inbox { tx: in_tx, bell };
    let join = std::thread::Builder::new()
        .name(format!("net-comm-{my_rank}"))
        .spawn(move || comm_loop::<M>(my_rank, sockets, out_rx, inbox, shared2, hb))?;
    Ok(CommHandle {
        out_tx,
        in_rx,
        shared,
        join: Some(join),
    })
}

/// The root-side failure detector's working state (see module docs): a
/// probe timer plus per-peer liveness clocks. Every inbound frame from a
/// peer — CD replies, stats, batches, not just heartbeat acks — refreshes
/// its clock, so the explicit probes only carry liveness across windows
/// where no other traffic flows.
struct Detector {
    interval: Duration,
    timeout: Duration,
    next_probe: Instant,
    seq: u64,
    last_heard: BTreeMap<u32, Instant>,
}

fn comm_loop<M: Message>(
    my_rank: u32,
    sockets: Vec<(u32, TcpStream)>,
    out_rx: Receiver<(u32, u8, Bytes)>,
    in_tx: Inbox<M>,
    shared: Arc<CommShared>,
    hb: Option<HeartbeatCfg>,
) {
    let mut peers: BTreeMap<u32, Peer> = sockets
        .into_iter()
        .map(|(rank, sock)| {
            (
                rank,
                Peer {
                    sock,
                    buf: FrameBuf::default(),
                    dead: false,
                },
            )
        })
        .collect();
    let ranks: Vec<u32> = peers.keys().copied().collect();
    let fatal = |shared: &CommShared, in_tx: &Inbox<M>, msg: String| {
        shared.fail(msg.clone());
        in_tx.send(Event::TransportError(TransportError(msg)));
    };
    // Only the root originates probes and classifies peers; workers just
    // answer (and their mesh-link view rides in each ack).
    let mut detector = hb.filter(|_| my_rank == 0).map(|cfg| Detector {
        interval: cfg.interval,
        timeout: cfg.timeout,
        // simlint: allow(R2) -- liveness clocks; wall time never feeds simulation state
        next_probe: Instant::now(),
        seq: 0,
        last_heard: ranks
            .iter()
            // simlint: allow(R2) -- liveness clocks; wall time never feeds simulation state
            .map(|&r| (r, Instant::now()))
            .collect(),
    });
    loop {
        // Injected process stall: go completely silent (no reads, no
        // writes, sockets open) for the requested window.
        let stall = shared.stall_ms.swap(0, Ordering::SeqCst);
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        let mut progressed = false;

        // Outbound: drain everything compute has queued, staged per peer,
        // then flush each peer's backlog in one vectored write — one
        // syscall per peer per drain pass instead of one per frame
        // (§IV-C flush coalescing).
        let mut staged: BTreeMap<u32, Vec<(u8, Bytes)>> = BTreeMap::new();
        loop {
            match out_rx.try_recv() {
                Ok((dst, kind, payload)) => {
                    progressed = true;
                    staged.entry(dst).or_default().push((kind, payload));
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        for (dst, frames) in staged {
            match peers.get_mut(&dst) {
                Some(p) if !p.dead => {
                    let refs: Vec<(u8, &[u8])> = frames.iter().map(|(k, b)| (*k, &b[..])).collect();
                    let t0 = Instant::now(); // simlint: allow(R2) -- flush-cost telemetry for the adaptive batch controller, never fed to the DES
                    match write_frames(&mut p.sock, &refs) {
                        Ok(n) => {
                            shared
                                .flush_ns
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::SeqCst);
                            shared
                                .frames_sent
                                .fetch_add(refs.len() as u64, Ordering::SeqCst);
                            shared.bytes_sent.fetch_add(n, Ordering::SeqCst);
                            if refs.len() >= 2 {
                                shared.coalesced_flushes.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(e) => {
                            p.dead = true;
                            shared.set_health(dst, PeerHealth::Crashed);
                            fatal(&shared, &in_tx, format!("write to rank {dst} failed: {e}"));
                        }
                    }
                }
                _ => fatal(&shared, &in_tx, format!("no live socket to rank {dst}")),
            }
        }

        // Inbound: poll every socket, dispatch complete frames.
        for &rank in &ranks {
            let polled = {
                let Some(p) = peers.get_mut(&rank) else {
                    continue;
                };
                if p.dead {
                    continue;
                }
                match p.buf.poll(&mut p.sock) {
                    Ok(polled) => polled,
                    Err(e) => {
                        p.dead = true;
                        shared.set_health(rank, PeerHealth::Crashed);
                        fatal(&shared, &in_tx, format!("rank {rank} disconnected: {e}"));
                        continue;
                    }
                }
            };
            if polled.bytes > 0 {
                progressed = true;
                shared.bytes_recv.fetch_add(polled.bytes, Ordering::SeqCst);
                if let Some(d) = detector.as_mut() {
                    // Any traffic is proof of life, not just heartbeat acks.
                    // simlint: allow(R2) -- liveness clock refresh; wall time never feeds simulation state
                    d.last_heard.insert(rank, Instant::now());
                }
            }
            for (kind, payload) in polled.frames {
                shared.frames_recv.fetch_add(1, Ordering::SeqCst);
                if dispatch::<M>(my_rank, rank, kind, &payload, &mut peers, &in_tx, &shared) {
                    return; // SHUTDOWN delivered
                }
            }
            if polled.eof {
                // Frames that rode in ahead of the close were dispatched
                // above. Who closed decides severity: the root losing any
                // worker, or a worker losing the root, is fatal. A worker
                // seeing a *peer worker* close is not — workers exit at
                // their own pace during teardown, and the root (which has
                // a socket to every worker) remains the liveness
                // authority. A later send to the dead peer still fails.
                if let Some(p) = peers.get_mut(&rank) {
                    p.dead = true;
                }
                if my_rank == 0 || rank == 0 {
                    shared.set_health(rank, PeerHealth::Crashed);
                    fatal(
                        &shared,
                        &in_tx,
                        format!("rank {rank} disconnected: peer closed the connection"),
                    );
                }
            }
        }

        // Failure detection (root only): originate probes on the interval
        // and sweep for peers that have gone silent past the timeout. A
        // write error means the peer is *crashed* (kernel saw the socket
        // die); silence on an open socket past the timeout means *stalled*.
        if let Some(d) = detector.as_mut() {
            // simlint: allow(R2) -- failure-detector clock; wall time never feeds simulation state
            let now = Instant::now();
            if now >= d.next_probe {
                d.next_probe = now + d.interval;
                d.seq += 1;
                let (k, p) = Ctl::Heartbeat { seq: d.seq }.encode();
                let mut crashed: Vec<(u32, String)> = Vec::new();
                for (&rank, peer) in peers.iter_mut() {
                    if peer.dead {
                        continue;
                    }
                    match write_frame(&mut peer.sock, k, &p) {
                        Ok(n) => {
                            shared.frames_sent.fetch_add(1, Ordering::SeqCst);
                            shared.bytes_sent.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(e) => {
                            peer.dead = true;
                            crashed.push((rank, e.to_string()));
                        }
                    }
                }
                for (rank, e) in crashed {
                    shared.set_health(rank, PeerHealth::Crashed);
                    fatal(
                        &shared,
                        &in_tx,
                        format!("heartbeat to rank {rank} failed: {e}"),
                    );
                }
            }
            let mut stalled: Vec<u32> = Vec::new();
            for (&rank, &heard) in d.last_heard.iter() {
                let open = peers.get(&rank).map(|p| !p.dead).unwrap_or(false);
                if open && now.duration_since(heard) > d.timeout {
                    stalled.push(rank);
                }
            }
            for rank in stalled {
                if let Some(p) = peers.get_mut(&rank) {
                    p.dead = true;
                }
                d.last_heard.remove(&rank);
                shared.set_health(rank, PeerHealth::Stalled);
                fatal(
                    &shared,
                    &in_tx,
                    format!(
                        "rank {rank} stalled: no frames for {} ms (heartbeat timeout; socket still open)",
                        d.timeout.as_millis()
                    ),
                );
            }
        }

        if shared.stop.load(Ordering::SeqCst) {
            // Compute queued everything it wanted sent before setting
            // `stop`; one more outbound drain pass then exit.
            while let Ok((dst, kind, payload)) = out_rx.try_recv() {
                if let Some(p) = peers.get_mut(&dst) {
                    if !p.dead {
                        let _ = write_frame(&mut p.sock, kind, &payload);
                    }
                }
            }
            return;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
}

/// Handle one inbound frame. Returns `true` when the comm loop should exit
/// (SHUTDOWN received).
fn dispatch<M: Message>(
    my_rank: u32,
    from: u32,
    kind_byte: u8,
    payload: &[u8],
    peers: &mut BTreeMap<u32, Peer>,
    in_tx: &Inbox<M>,
    shared: &Arc<CommShared>,
) -> bool {
    use crate::net::wire::kind;
    match kind_byte {
        kind::BATCH => match wire::decode_batch::<M>(payload) {
            Some((phase, _src, envelopes)) => {
                in_tx.send(Event::Batch { phase, envelopes });
            }
            None => {
                let msg = format!("malformed BATCH from rank {from}");
                shared.fail(msg.clone());
                in_tx.send(Event::TransportError(TransportError(msg)));
            }
        },
        kind::CD_PROBE => {
            // Answered here, without a compute round-trip: idle only if
            // compute is both idle and in the probed phase.
            if let Some(Ctl::CdProbe { phase, wave }) = Ctl::decode(kind_byte, payload) {
                let idle = shared.idle.load(Ordering::SeqCst)
                    && shared.cur_phase.load(Ordering::SeqCst) == phase;
                let reply = Ctl::CdReply {
                    rank: my_rank,
                    wave,
                    produced: shared.produced.load(Ordering::SeqCst),
                    consumed: shared.consumed.load(Ordering::SeqCst),
                    idle,
                };
                let (k, p) = reply.encode();
                if let Some(peer) = peers.get_mut(&from) {
                    match write_frame(&mut peer.sock, k, &p) {
                        Ok(n) => {
                            shared.frames_sent.fetch_add(1, Ordering::SeqCst);
                            shared.bytes_sent.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(e) => {
                            peer.dead = true;
                            let msg = format!("CD reply to rank {from} failed: {e}");
                            shared.fail(msg.clone());
                            in_tx.send(Event::TransportError(TransportError(msg)));
                        }
                    }
                }
            }
        }
        kind::HEARTBEAT => {
            // Answered here, like CD probes — a stalled *compute* thread
            // still acks, which is exactly the distinction the detector
            // wants: heartbeats prove the process is scheduled, CD replies
            // prove compute is advancing. The ack carries this worker's
            // view of its mesh links so the root can tell a partition
            // (worker lost a peer, root link fine) from a crash.
            if let Some(Ctl::Heartbeat { seq }) = Ctl::decode(kind_byte, payload) {
                let mut mesh_dead = 0u32;
                for (&r, p) in peers.iter() {
                    if r != from && p.dead {
                        mesh_dead |= 1u32 << r.min(31);
                    }
                }
                let ack = Ctl::HeartbeatAck {
                    rank: my_rank,
                    seq,
                    mesh_dead,
                };
                let (k, p) = ack.encode();
                if let Some(peer) = peers.get_mut(&from) {
                    match write_frame(&mut peer.sock, k, &p) {
                        Ok(n) => {
                            shared.frames_sent.fetch_add(1, Ordering::SeqCst);
                            shared.bytes_sent.fetch_add(n, Ordering::SeqCst);
                        }
                        Err(e) => {
                            peer.dead = true;
                            let msg = format!("heartbeat ack to rank {from} failed: {e}");
                            shared.fail(msg.clone());
                            in_tx.send(Event::TransportError(TransportError(msg)));
                        }
                    }
                }
            }
        }
        kind::HEARTBEAT_ACK => {
            if let Some(Ctl::HeartbeatAck {
                rank, mesh_dead, ..
            }) = Ctl::decode(kind_byte, payload)
            {
                if mesh_dead != 0 {
                    // The worker answered us, so its root link is healthy —
                    // but it reports dead links inside the worker mesh.
                    // That is a partition, not a crash.
                    shared.set_health(rank, PeerHealth::Partitioned);
                    let msg = format!(
                        "rank {rank} partitioned: its links to ranks [{}] are down while its root link is healthy",
                        (0..32)
                            .filter(|b| mesh_dead & (1 << b) != 0)
                            .map(|b| b.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    shared.fail(msg.clone());
                    in_tx.send(Event::TransportError(TransportError(msg)));
                }
            }
        }
        kind::CD_REPLY => {
            if let Some(Ctl::CdReply {
                rank,
                wave,
                produced,
                consumed,
                idle,
            }) = Ctl::decode(kind_byte, payload)
            {
                let mut replies = shared.replies();
                let idx = rank as usize - 1;
                if idx < replies.len() && replies[idx].wave < wave {
                    replies[idx] = CdReplyState {
                        wave,
                        produced,
                        consumed,
                        idle,
                    };
                }
            }
        }
        _ => match Ctl::decode(kind_byte, payload) {
            Some(Ctl::PhaseStart {
                phase,
                n_chares,
                map_hash,
            }) => {
                in_tx.send(Event::PhaseStart {
                    phase,
                    n_chares,
                    map_hash,
                });
            }
            Some(Ctl::PhaseEnd { phase }) => {
                in_tx.send(Event::PhaseEnd { phase });
            }
            Some(Ctl::PhaseResult { reductions, per_pe }) => {
                in_tx.send(Event::PhaseResult { reductions, per_pe });
            }
            Some(Ctl::Stats {
                rank,
                reductions,
                per_pe,
            }) => {
                in_tx.send(Event::Stats {
                    rank,
                    reductions,
                    per_pe,
                });
            }
            Some(Ctl::Shutdown) => {
                in_tx.send(Event::Shutdown);
                return true;
            }
            _ => {
                let msg = format!("unexpected frame kind {kind_byte} from rank {from}");
                shared.fail(msg.clone());
                in_tx.send(Event::TransportError(TransportError(msg)));
            }
        },
    }
    false
}
