//! Wire format for the networked engine: little-endian payload codecs
//! built on the `bytes` shim. Every frame on a socket is
//! `[len: u32][kind: u8][payload]` (the length counts the kind byte plus
//! the payload — see [`crate::net::transport`]); this module defines what
//! goes inside the payload for each kind. DESIGN.md §8 documents the
//! layouts normatively.

use crate::chare::{ChareId, Message};
use crate::stats::{PeStats, ReductionSlots, REDUCTION_SLOTS};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// First field of HELLO: "EPNT" interpreted little-endian.
pub const MAGIC: u32 = 0x544E_5045;
/// Wire protocol version; a mismatch is a setup error, never negotiated.
/// v2: HEARTBEAT/HEARTBEAT_ACK liveness frames and four new [`PeStats`]
/// fields (eager flush + recovery counters).
pub const VERSION: u32 = 2;

/// Frame kind bytes.
pub mod kind {
    /// Worker → root, first frame on the root socket.
    pub const HELLO: u8 = 1;
    /// Root → workers: every worker's mesh listen port.
    pub const PEERS: u8 = 2;
    /// Worker → worker, first frame on a mesh socket.
    pub const PEER_HELLO: u8 = 3;
    /// Worker → root: the worker's side of the mesh is fully wired.
    pub const MESH_OK: u8 = 4;
    /// Root → workers: enter a phase (carries topology check values).
    pub const PHASE_START: u8 = 5;
    /// Aggregated application envelopes, any process → any process.
    pub const BATCH: u8 = 6;
    /// Root → workers: completion-detection wave probe.
    pub const CD_PROBE: u8 = 7;
    /// Worker → root: the worker's produce/consume/idle snapshot.
    pub const CD_REPLY: u8 = 8;
    /// Root → workers: completion detection fired, phase over.
    pub const PHASE_END: u8 = 9;
    /// Worker → root: local per-PE counters and reduction contributions.
    pub const STATS: u8 = 10;
    /// Root → workers: globally merged reductions and per-PE stats.
    pub const PHASE_RESULT: u8 = 11;
    /// Root → workers: tear down and exit.
    pub const SHUTDOWN: u8 = 12;
    /// Root → workers: liveness probe (piggybacks on the CD probe
    /// cadence while a phase runs, fills the gaps between phases).
    pub const HEARTBEAT: u8 = 13;
    /// Worker → root: liveness echo, answered by the comm thread with no
    /// compute round-trip, carrying the worker's view of its mesh links.
    pub const HEARTBEAT_ACK: u8 = 14;
}

/// A worker's introduction to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Which net-runtime construction within the process this socket
    /// belongs to (guards against a worker connecting to the wrong run).
    pub invocation: u64,
    /// The worker's process rank (1-based; rank 0 is the root).
    pub rank: u32,
    /// Total process count the worker was configured with.
    pub n_procs: u32,
    /// Total PE count the worker was configured with.
    pub n_pes: u32,
    /// Loopback port of the worker's mesh listener.
    pub listen_port: u16,
}

/// Every non-BATCH frame, decoded. BATCH is handled separately because its
/// payload embeds application messages (generic in `M`).
#[derive(Debug, Clone, PartialEq)]
pub enum Ctl {
    /// See [`Hello`].
    Hello(Hello),
    /// `(rank, mesh listen port)` for every worker.
    Peers(Vec<(u32, u16)>),
    /// Mesh-socket introduction.
    PeerHello {
        /// Invocation echo.
        invocation: u64,
        /// Connecting worker's rank.
        rank: u32,
    },
    /// Mesh wiring complete on this worker.
    MeshOk {
        /// Reporting worker's rank.
        rank: u32,
    },
    /// Enter `phase`; `n_chares`/`map_hash` must match on every process
    /// (the SPMD topology check).
    PhaseStart {
        /// 1-based phase number.
        phase: u64,
        /// Registered chare count.
        n_chares: u32,
        /// FNV-1a over the chare→PE map.
        map_hash: u64,
    },
    /// CD wave probe for `phase`.
    CdProbe {
        /// Phase the probe belongs to (replies for other phases are
        /// answered not-idle).
        phase: u64,
        /// Wave number, strictly increasing within a phase.
        wave: u64,
    },
    /// CD wave reply.
    CdReply {
        /// Replying worker's rank.
        rank: u32,
        /// Echo of the probe's wave.
        wave: u64,
        /// Wire envelopes produced by this process so far this phase.
        produced: u64,
        /// Wire envelopes consumed by this process so far this phase.
        consumed: u64,
        /// Whether the process was idle in the probed phase.
        idle: bool,
    },
    /// Completion detection fired for `phase`.
    PhaseEnd {
        /// The finished phase.
        phase: u64,
    },
    /// A worker's end-of-phase counters.
    Stats {
        /// Reporting worker's rank.
        rank: u32,
        /// The worker's reduction contributions.
        reductions: ReductionSlots,
        /// `(global pe index, counters)` for each of the worker's PEs.
        per_pe: Vec<(u32, PeStats)>,
    },
    /// Globally merged phase outcome, broadcast so every process returns
    /// identical [`crate::stats::PhaseStats`] (SPMD lockstep).
    PhaseResult {
        /// Merged reductions.
        reductions: ReductionSlots,
        /// Counters for all PEs, indexed by global PE.
        per_pe: Vec<PeStats>,
    },
    /// Tear down.
    Shutdown,
    /// Liveness probe (root → worker).
    Heartbeat {
        /// Strictly increasing probe sequence number.
        seq: u64,
    },
    /// Liveness echo (worker → root).
    HeartbeatAck {
        /// Replying worker's rank.
        rank: u32,
        /// Echo of the probe's sequence number.
        seq: u64,
        /// Bitmask of worker ranks whose *mesh* link this worker's comm
        /// thread has marked dead (bit `r` set = link to rank `r` down).
        /// Nonzero while the root's own link to those ranks is healthy
        /// means the mesh is partitioned, not crashed.
        mesh_dead: u32,
    },
}

/// Number of `u64` fields in [`PeStats`] — the codec writes them all in
/// declaration order, so this constant pins the layout.
const PE_STATS_FIELDS: usize = 27;

fn put_pe_stats(out: &mut BytesMut, s: &PeStats) {
    let fields = [
        s.sent_self,
        s.sent_intra,
        s.sent_remote,
        s.network_packets,
        s.remote_bytes,
        s.forwarded,
        s.processed,
        s.busy_ns,
        s.faults_dropped,
        s.faults_dup_suppressed,
        s.lost,
        s.wire_frames_sent,
        s.wire_frames_recv,
        s.wire_bytes_sent,
        s.wire_bytes_recv,
        s.wire_flush_batch,
        s.wire_flush_idle,
        s.wire_msgs_batch,
        s.wire_msgs_idle,
        s.wire_coalesced_flushes,
        s.shm_frames_sent,
        s.shm_parks,
        s.agg_batch,
        s.wire_flush_eager,
        s.wire_msgs_eager,
        s.recovery_checkpoints,
        s.recovery_restores,
    ];
    debug_assert_eq!(fields.len(), PE_STATS_FIELDS);
    for f in fields {
        out.put_u64_le(f);
    }
}

fn get_pe_stats(buf: &mut &[u8]) -> Option<PeStats> {
    if buf.remaining() < PE_STATS_FIELDS * 8 {
        return None;
    }
    Some(PeStats {
        sent_self: buf.get_u64_le(),
        sent_intra: buf.get_u64_le(),
        sent_remote: buf.get_u64_le(),
        network_packets: buf.get_u64_le(),
        remote_bytes: buf.get_u64_le(),
        forwarded: buf.get_u64_le(),
        processed: buf.get_u64_le(),
        busy_ns: buf.get_u64_le(),
        faults_dropped: buf.get_u64_le(),
        faults_dup_suppressed: buf.get_u64_le(),
        lost: buf.get_u64_le(),
        wire_frames_sent: buf.get_u64_le(),
        wire_frames_recv: buf.get_u64_le(),
        wire_bytes_sent: buf.get_u64_le(),
        wire_bytes_recv: buf.get_u64_le(),
        wire_flush_batch: buf.get_u64_le(),
        wire_flush_idle: buf.get_u64_le(),
        wire_msgs_batch: buf.get_u64_le(),
        wire_msgs_idle: buf.get_u64_le(),
        wire_coalesced_flushes: buf.get_u64_le(),
        shm_frames_sent: buf.get_u64_le(),
        shm_parks: buf.get_u64_le(),
        agg_batch: buf.get_u64_le(),
        wire_flush_eager: buf.get_u64_le(),
        wire_msgs_eager: buf.get_u64_le(),
        recovery_checkpoints: buf.get_u64_le(),
        recovery_restores: buf.get_u64_le(),
    })
}

fn put_reductions(out: &mut BytesMut, r: &ReductionSlots) {
    for slot in 0..REDUCTION_SLOTS {
        out.put_u64_le(r.get(slot));
    }
}

fn get_reductions(buf: &mut &[u8]) -> Option<ReductionSlots> {
    if buf.remaining() < REDUCTION_SLOTS * 8 {
        return None;
    }
    let mut r = ReductionSlots::default();
    for slot in 0..REDUCTION_SLOTS {
        r.add(slot, buf.get_u64_le());
    }
    Some(r)
}

impl Ctl {
    /// Encode into `(kind byte, payload)`.
    pub fn encode(&self) -> (u8, Bytes) {
        let mut out = BytesMut::with_capacity(64);
        let kind = match self {
            Ctl::Hello(h) => {
                out.put_u32_le(MAGIC);
                out.put_u32_le(VERSION);
                out.put_u64_le(h.invocation);
                out.put_u32_le(h.rank);
                out.put_u32_le(h.n_procs);
                out.put_u32_le(h.n_pes);
                out.put_u16_le(h.listen_port);
                kind::HELLO
            }
            Ctl::Peers(peers) => {
                out.put_u32_le(peers.len() as u32);
                for (rank, port) in peers {
                    out.put_u32_le(*rank);
                    out.put_u16_le(*port);
                }
                kind::PEERS
            }
            Ctl::PeerHello { invocation, rank } => {
                out.put_u64_le(*invocation);
                out.put_u32_le(*rank);
                kind::PEER_HELLO
            }
            Ctl::MeshOk { rank } => {
                out.put_u32_le(*rank);
                kind::MESH_OK
            }
            Ctl::PhaseStart {
                phase,
                n_chares,
                map_hash,
            } => {
                out.put_u64_le(*phase);
                out.put_u32_le(*n_chares);
                out.put_u64_le(*map_hash);
                kind::PHASE_START
            }
            Ctl::CdProbe { phase, wave } => {
                out.put_u64_le(*phase);
                out.put_u64_le(*wave);
                kind::CD_PROBE
            }
            Ctl::CdReply {
                rank,
                wave,
                produced,
                consumed,
                idle,
            } => {
                out.put_u32_le(*rank);
                out.put_u64_le(*wave);
                out.put_u64_le(*produced);
                out.put_u64_le(*consumed);
                out.put_u8(u8::from(*idle));
                kind::CD_REPLY
            }
            Ctl::PhaseEnd { phase } => {
                out.put_u64_le(*phase);
                kind::PHASE_END
            }
            Ctl::Stats {
                rank,
                reductions,
                per_pe,
            } => {
                out.put_u32_le(*rank);
                put_reductions(&mut out, reductions);
                out.put_u32_le(per_pe.len() as u32);
                for (pe, st) in per_pe {
                    out.put_u32_le(*pe);
                    put_pe_stats(&mut out, st);
                }
                kind::STATS
            }
            Ctl::PhaseResult { reductions, per_pe } => {
                put_reductions(&mut out, reductions);
                out.put_u32_le(per_pe.len() as u32);
                for st in per_pe {
                    put_pe_stats(&mut out, st);
                }
                kind::PHASE_RESULT
            }
            Ctl::Shutdown => kind::SHUTDOWN,
            Ctl::Heartbeat { seq } => {
                out.put_u64_le(*seq);
                kind::HEARTBEAT
            }
            Ctl::HeartbeatAck {
                rank,
                seq,
                mesh_dead,
            } => {
                out.put_u32_le(*rank);
                out.put_u64_le(*seq);
                out.put_u32_le(*mesh_dead);
                kind::HEARTBEAT_ACK
            }
        };
        (kind, out.freeze())
    }

    /// Decode a control frame. `None` means malformed — the transport
    /// treats that as fatal, never skips.
    pub fn decode(kind_byte: u8, payload: &[u8]) -> Option<Ctl> {
        let mut buf = payload;
        let need = |buf: &&[u8], n: usize| buf.remaining() >= n;
        let ctl = match kind_byte {
            kind::HELLO => {
                if !need(&buf, 30) || buf.get_u32_le() != MAGIC || buf.get_u32_le() != VERSION {
                    return None;
                }
                Ctl::Hello(Hello {
                    invocation: buf.get_u64_le(),
                    rank: buf.get_u32_le(),
                    n_procs: buf.get_u32_le(),
                    n_pes: buf.get_u32_le(),
                    listen_port: buf.get_u16_le(),
                })
            }
            kind::PEERS => {
                if !need(&buf, 4) {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                if !need(&buf, n.checked_mul(6)?) {
                    return None;
                }
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    peers.push((buf.get_u32_le(), buf.get_u16_le()));
                }
                Ctl::Peers(peers)
            }
            kind::PEER_HELLO => {
                if !need(&buf, 12) {
                    return None;
                }
                Ctl::PeerHello {
                    invocation: buf.get_u64_le(),
                    rank: buf.get_u32_le(),
                }
            }
            kind::MESH_OK => {
                if !need(&buf, 4) {
                    return None;
                }
                Ctl::MeshOk {
                    rank: buf.get_u32_le(),
                }
            }
            kind::PHASE_START => {
                if !need(&buf, 20) {
                    return None;
                }
                Ctl::PhaseStart {
                    phase: buf.get_u64_le(),
                    n_chares: buf.get_u32_le(),
                    map_hash: buf.get_u64_le(),
                }
            }
            kind::CD_PROBE => {
                if !need(&buf, 16) {
                    return None;
                }
                Ctl::CdProbe {
                    phase: buf.get_u64_le(),
                    wave: buf.get_u64_le(),
                }
            }
            kind::CD_REPLY => {
                if !need(&buf, 29) {
                    return None;
                }
                Ctl::CdReply {
                    rank: buf.get_u32_le(),
                    wave: buf.get_u64_le(),
                    produced: buf.get_u64_le(),
                    consumed: buf.get_u64_le(),
                    idle: buf.get_u8() != 0,
                }
            }
            kind::PHASE_END => {
                if !need(&buf, 8) {
                    return None;
                }
                Ctl::PhaseEnd {
                    phase: buf.get_u64_le(),
                }
            }
            kind::STATS => {
                if !need(&buf, 4) {
                    return None;
                }
                let rank = buf.get_u32_le();
                let reductions = get_reductions(&mut buf)?;
                if !need(&buf, 4) {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut per_pe = Vec::with_capacity(n);
                for _ in 0..n {
                    if !need(&buf, 4) {
                        return None;
                    }
                    let pe = buf.get_u32_le();
                    per_pe.push((pe, get_pe_stats(&mut buf)?));
                }
                Ctl::Stats {
                    rank,
                    reductions,
                    per_pe,
                }
            }
            kind::PHASE_RESULT => {
                let reductions = get_reductions(&mut buf)?;
                if !need(&buf, 4) {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut per_pe = Vec::with_capacity(n);
                for _ in 0..n {
                    per_pe.push(get_pe_stats(&mut buf)?);
                }
                Ctl::PhaseResult { reductions, per_pe }
            }
            kind::SHUTDOWN => Ctl::Shutdown,
            kind::HEARTBEAT => {
                if !need(&buf, 8) {
                    return None;
                }
                Ctl::Heartbeat {
                    seq: buf.get_u64_le(),
                }
            }
            kind::HEARTBEAT_ACK => {
                if !need(&buf, 16) {
                    return None;
                }
                Ctl::HeartbeatAck {
                    rank: buf.get_u32_le(),
                    seq: buf.get_u64_le(),
                    mesh_dead: buf.get_u32_le(),
                }
            }
            _ => return None,
        };
        if buf.remaining() != 0 {
            return None; // trailing garbage
        }
        Some(ctl)
    }
}

/// Encode a BATCH payload: `phase | src_rank | count`, then per envelope
/// `chare | payload_len | payload` where `payload` is the application
/// message's own [`Message::wire_encode`] output. The explicit per-envelope
/// length lets the decoder isolate each message and verify it was fully
/// consumed.
pub fn encode_batch<M: Message>(
    phase: u64,
    src_rank: u32,
    envelopes: &[crate::aggregator::Envelope<M>],
) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + envelopes.len() * 32);
    out.put_u64_le(phase);
    out.put_u32_le(src_rank);
    out.put_u32_le(envelopes.len() as u32);
    let mut scratch = BytesMut::with_capacity(64);
    for env in envelopes {
        env.msg.wire_encode(&mut scratch);
        let frozen = std::mem::take(&mut scratch).freeze();
        out.put_u32_le(env.to.0);
        out.put_u32_le(frozen.len() as u32);
        out.put_slice(&frozen);
    }
    out.freeze()
}

/// Decode a BATCH payload into `(phase, src_rank, envelopes)`.
#[allow(clippy::type_complexity)]
pub fn decode_batch<M: Message>(payload: &[u8]) -> Option<(u64, u32, Vec<(ChareId, M)>)> {
    let mut buf = payload;
    if buf.remaining() < 16 {
        return None;
    }
    let phase = buf.get_u64_le();
    let src_rank = buf.get_u32_le();
    let n = buf.get_u32_le() as usize;
    let mut envelopes = Vec::with_capacity(n);
    for _ in 0..n {
        if buf.remaining() < 8 {
            return None;
        }
        let to = ChareId(buf.get_u32_le());
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return None;
        }
        let (head, tail) = buf.split_at(len);
        let mut msg_buf = head;
        let msg = M::wire_decode(&mut msg_buf)?;
        if msg_buf.remaining() != 0 {
            return None; // codec under-read its own payload
        }
        buf = tail;
        envelopes.push((to, msg));
    }
    if buf.remaining() != 0 {
        return None;
    }
    Some((phase, src_rank, envelopes))
}

/// FNV-1a over the chare→PE map; PHASE_START carries it so a worker whose
/// SPMD replay built a different topology fails loudly instead of
/// misrouting messages.
pub fn map_hash(pe_of: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(pe_of.len() as u64);
    for &pe in pe_of {
        mix(u64::from(pe));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ctl: Ctl) {
        let (kind, payload) = ctl.encode();
        let back = Ctl::decode(kind, &payload).expect("decodes");
        assert_eq!(back, ctl);
    }

    #[test]
    fn control_frames_roundtrip() {
        roundtrip(Ctl::Hello(Hello {
            invocation: 3,
            rank: 2,
            n_procs: 4,
            n_pes: 16,
            listen_port: 45_001,
        }));
        roundtrip(Ctl::Peers(vec![(1, 40_001), (2, 40_002), (3, 40_003)]));
        roundtrip(Ctl::PeerHello {
            invocation: 9,
            rank: 3,
        });
        roundtrip(Ctl::MeshOk { rank: 1 });
        roundtrip(Ctl::PhaseStart {
            phase: 7,
            n_chares: 120,
            map_hash: 0xdead_beef_cafe_f00d,
        });
        roundtrip(Ctl::CdProbe { phase: 7, wave: 41 });
        roundtrip(Ctl::CdReply {
            rank: 1,
            wave: 41,
            produced: 1000,
            consumed: 998,
            idle: true,
        });
        roundtrip(Ctl::PhaseEnd { phase: 7 });
        let mut reductions = ReductionSlots::default();
        reductions.add(0, 5);
        reductions.add(15, 9);
        let st = PeStats {
            sent_remote: 11,
            wire_bytes_sent: 2048,
            wire_flush_idle: 3,
            wire_msgs_batch: 40,
            wire_coalesced_flushes: 6,
            shm_frames_sent: 12,
            shm_parks: 2,
            agg_batch: 64,
            ..Default::default()
        };
        roundtrip(Ctl::Stats {
            rank: 2,
            reductions: reductions.clone(),
            per_pe: vec![(4, st), (5, PeStats::default())],
        });
        roundtrip(Ctl::PhaseResult {
            reductions,
            per_pe: vec![st, PeStats::default(), st],
        });
        roundtrip(Ctl::Shutdown);
        roundtrip(Ctl::Heartbeat { seq: 17 });
        roundtrip(Ctl::HeartbeatAck {
            rank: 3,
            seq: 17,
            mesh_dead: 0b0110,
        });
    }

    #[test]
    fn heartbeat_truncation_rejected() {
        let (kind, payload) = Ctl::HeartbeatAck {
            rank: 1,
            seq: 9,
            mesh_dead: 0,
        }
        .encode();
        for cut in 0..payload.len() {
            assert!(Ctl::decode(kind, &payload[..cut]).is_none(), "cut {cut}");
        }
        let (kind, payload) = Ctl::Heartbeat { seq: 1 }.encode();
        assert!(Ctl::decode(kind, &payload[..7]).is_none());
    }

    #[test]
    fn bad_magic_and_truncation_rejected() {
        let (kind, payload) = Ctl::Hello(Hello {
            invocation: 0,
            rank: 1,
            n_procs: 2,
            n_pes: 2,
            listen_port: 1,
        })
        .encode();
        let mut corrupt = payload.to_vec();
        corrupt[0] ^= 0xff;
        assert!(Ctl::decode(kind, &corrupt).is_none(), "bad magic");
        assert!(
            Ctl::decode(kind, &payload[..payload.len() - 1]).is_none(),
            "truncated"
        );
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert!(Ctl::decode(kind, &trailing).is_none(), "trailing garbage");
        assert!(Ctl::decode(200, &payload).is_none(), "unknown kind");
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Tok(u64);
    impl Message for Tok {
        fn wire_encode(&self, out: &mut BytesMut) {
            out.put_u64_le(self.0);
        }

        fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
            if buf.remaining() < 8 {
                return None;
            }
            Some(Tok(buf.get_u64_le()))
        }
    }

    #[test]
    fn batch_roundtrip() {
        use crate::aggregator::Envelope;
        let envs = vec![
            Envelope {
                to: ChareId(3),
                msg: Tok(10),
            },
            Envelope {
                to: ChareId(7),
                msg: Tok(u64::MAX),
            },
        ];
        let payload = encode_batch(5, 2, &envs);
        let (phase, src, back) = decode_batch::<Tok>(&payload).expect("decodes");
        assert_eq!(phase, 5);
        assert_eq!(src, 2);
        assert_eq!(
            back,
            vec![(ChareId(3), Tok(10)), (ChareId(7), Tok(u64::MAX))]
        );
    }

    #[test]
    fn batch_truncation_rejected() {
        let envs = vec![crate::aggregator::Envelope {
            to: ChareId(1),
            msg: Tok(1),
        }];
        let payload = encode_batch(1, 0, &envs);
        for cut in 1..payload.len() {
            assert!(
                decode_batch::<Tok>(&payload[..cut]).is_none(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn map_hash_sensitive_to_placement() {
        let a = map_hash(&[0, 0, 1, 1]);
        let b = map_hash(&[0, 1, 0, 1]);
        let c = map_hash(&[0, 0, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, map_hash(&[0, 0, 1, 1]));
    }
}
