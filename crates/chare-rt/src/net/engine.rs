//! The networked multi-process engine.
//!
//! One process per rank: rank 0 (the **root**) is the process the driver
//! started; it spawns the workers (see [`crate::net::launch`]), owns phase
//! control and cross-process completion detection, and merges stats.
//! Every process runs the same SPMD driver code, registers the same chare
//! array, keeps only the chares whose PE falls in its contiguous range,
//! and executes the same compute loop: drain local queues → drain inbound
//! batches → idle-flush aggregation lanes → report idle.
//!
//! Cross-process completion detection composes the local produce/consume
//! idea of [`crate::completion`] with a wire protocol: each process keeps
//! two counters (wire envelopes produced / consumed) plus an idle flag;
//! the root probes all workers with CD_PROBE waves and declares the phase
//! complete when two consecutive waves see every process idle with equal
//! and unchanged Σproduced == Σconsumed. Producers bump `produced`
//! *before* a frame reaches the wire and consumers bump `consumed` only
//! *after* processing, so an in-flight batch always shows up as an
//! imbalance.

use crate::aggregator::{Aggregator, Envelope, Flush};
use crate::chare::{Chare, ChareId, Ctx, Message, Sender};
use crate::config::{NetTransport, RuntimeConfig};
use crate::net::comm::{self, CommHandle, Event};
use crate::net::launch;
use crate::net::shm::{Doorbell, RingConsumer, RingProducer, ShmRegion};
use crate::net::transport::FrameBuf;
use crate::net::wire::{self, Ctl};
use crate::net::TransportError;
use crate::stats::{PeStats, PhaseStats, ReductionSlots};
use crate::tram::Grid2D;
use std::collections::VecDeque;
use std::process::Child;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages drained from one local PE's queue before moving on (same
/// fairness quantum as the sequential engine).
const QUANTUM: usize = 256;
/// Iterations an idle worker spins over its rings before futex-parking
/// (keeps same-host ping-pong in the sub-µs regime; a park costs two
/// syscalls on the wake path).
const PARK_SPIN: u32 = 200;
/// Upper bound on one futex park. Liveness never depends on a wake-up —
/// CD probes are answered by the comm thread and the park re-checks both
/// event sources after this timeout at the latest.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);
/// Flushes between recomputations of the adaptive batch size.
const ADAPT_WINDOW: u64 = 32;
/// EWMA smoothing factor (α = 1/8) for the adaptive controller.
const ADAPT_ALPHA: f64 = 0.125;
/// Bounds on the adaptive batch size.
const ADAPT_MIN_BATCH: u32 = 2;
const ADAPT_MAX_BATCH: u32 = 1024;
/// An idle-flushed packet with at most this many envelopes marks its lane
/// "near-empty": the traffic toward that destination is too sparse to
/// fill batches, so waiting for one only adds idle-detection latency.
const NEAR_EMPTY_MSGS: usize = 2;
/// Consecutive near-empty idle flushes before a lane turns eager. One
/// sparse flush can be a phase tail; a streak is a traffic pattern.
const NEAR_EMPTY_STREAK: u32 = 3;
/// Eager flushes granted per qualification. Bounding the grant lets a
/// lane fall back to batching when traffic picks back up: once the grant
/// is spent the lane must re-qualify through another idle-flush streak
/// (and any batch-full flush revokes it immediately).
const EAGER_GRANT: u32 = 64;
/// Exit code of a worker killed by the `kill_rank`/`kill_phase` fault
/// knob.
pub const KILL_EXIT: i32 = 17;
/// Exit code of a worker that shut down *cleanly* after a transport
/// failure (peer loss, root abort). Distinct from 101 (a Rust panic) so
/// the conformance harness can tell an orderly transport-failure exit
/// from a crash.
pub const TRANSPORT_EXIT: i32 = 16;

/// Abort this process on a transport failure.
///
/// Role-dependent on purpose: the **root** carries the failure to the
/// driver as a panic whose payload is a typed [`TransportError`]
/// (harnesses `downcast_ref` it); a **worker** must not panic — its
/// driver is a replayed SPMD copy with nobody above it to catch anything
/// — so it logs and exits with [`TRANSPORT_EXIT`].
fn transport_abort(role: Role, err: TransportError) -> ! {
    eprintln!("[net] {err}");
    if role == Role::Worker {
        std::process::exit(TRANSPORT_EXIT);
    }
    std::panic::panic_any(err);
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Rank 0 of a multi-process run: spawns workers, drives CD, merges
    /// stats.
    Root,
    /// A spawned worker at its target invocation.
    Worker,
    /// No networking: either `n_procs == 1`, or a worker replaying an
    /// earlier invocation of its driver to reach its target.
    Standalone,
}

/// Why a cross-process batch left the process (feeds the
/// `wire_flush_batch` / `wire_flush_idle` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushCause {
    BatchFull,
    Idle,
    /// The adaptive controller converged to its minimum batch size — the
    /// latency-bound regime, where holding a message to fill a batch costs
    /// more than flushing it at once.
    Eager,
}

/// Which inter-process links ride the shared-memory rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShmMode {
    /// Every link (the `shm` transport).
    All,
    /// Worker↔worker only; root links stay on TCP (the `mixed` transport,
    /// exercised by conformance to prove the two planes interoperate
    /// mid-run).
    Mixed,
}

impl ShmMode {
    fn env_str(self) -> &'static str {
        match self {
            ShmMode::All => "shm",
            ShmMode::Mixed => "mixed",
        }
    }

    fn link_is_shm(self, a: u32, b: u32) -> bool {
        match self {
            ShmMode::All => true,
            ShmMode::Mixed => a != 0 && b != 0,
        }
    }
}

/// This process's attachments to the shared ring region: a producer toward
/// and a consumer from every shm-linked peer, the peers' doorbells (rung
/// after each push) and our own (futex-parked on when idle).
struct ShmPlane {
    producers: Vec<Option<RingProducer>>,
    consumers: Vec<Option<(RingConsumer, FrameBuf)>>,
    bells: Vec<Option<Doorbell>>,
    my_bell: Doorbell,
}

impl ShmPlane {
    fn build(
        region: &Arc<ShmRegion>,
        mode: ShmMode,
        my_rank: u32,
        n_procs: u32,
    ) -> std::io::Result<ShmPlane> {
        let n = n_procs as usize;
        let mut producers = Vec::with_capacity(n);
        let mut consumers = Vec::with_capacity(n);
        let mut bells = Vec::with_capacity(n);
        for r in 0..n_procs {
            let linked = r != my_rank && mode.link_is_shm(my_rank, r);
            producers.push(if linked {
                Some(RingProducer::attach(region.clone(), my_rank, r)?)
            } else {
                None
            });
            consumers.push(if linked {
                Some((
                    RingConsumer::attach(region.clone(), r, my_rank)?,
                    FrameBuf::default(),
                ))
            } else {
                None
            });
            bells.push(if linked {
                Some(Doorbell::attach(region.clone(), r)?)
            } else {
                None
            });
        }
        let my_bell = Doorbell::attach(region.clone(), my_rank)?;
        Ok(ShmPlane {
            producers,
            consumers,
            bells,
            my_bell,
        })
    }

    /// Any ring holding undelivered bytes? Cheap (one Acquire load per
    /// peer) — this is what the idle spin polls.
    fn has_inbound(&self) -> bool {
        self.consumers
            .iter()
            .flatten()
            .any(|(c, _)| c.pending() > 0)
    }
}

/// State of the adaptive aggregation controller (DESIGN.md §8): per-message
/// cost of batch size `B` is modelled as `C/B + g·B/2` — amortized
/// per-flush overhead `C` against queueing delay at inter-message gap `g` —
/// minimized at `B* = sqrt(2C/g)`. Both inputs are EWMA-smoothed
/// observations; the lanes are retuned every [`ADAPT_WINDOW`] flushes.
struct AdaptCtl {
    /// Start of the current observation window.
    window_start: Instant,
    /// Flushes observed this window.
    emits: u64,
    /// Envelopes flushed this window.
    msgs: u64,
    /// Compute-side nanoseconds spent emitting this window.
    inline_ns: u64,
    /// The comm thread's cumulative `flush_ns` at window start (its delta
    /// adds the socket-write share of the flush cost).
    comm_ns_mark: u64,
    /// Smoothed per-flush cost, ns.
    cost_ewma: f64,
    /// Smoothed inter-message gap, ns.
    gap_ewma: f64,
    /// The controller has converged to [`ADAPT_MIN_BATCH`]: the traffic is
    /// latency-bound and lanes are flushed eagerly after every push
    /// instead of waiting to fill.
    eager: bool,
}

/// The effective transport: the `ChareNetTransport` env override (fallback
/// `CHARE_NET_TRANSPORT`) applies when [`RuntimeConfig`] leaves the choice
/// at [`NetTransport::Auto`]; a config that *forces* a plane keeps it (the
/// transport-matrix tests rely on that meaning under CI's env matrix).
/// Only the root consults either — workers follow the inherited region fd,
/// so both sides always agree.
fn resolve_transport(cfg: &RuntimeConfig) -> NetTransport {
    if cfg.net.transport != NetTransport::Auto {
        return cfg.net.transport;
    }
    std::env::var("ChareNetTransport")
        .or_else(|_| std::env::var("CHARE_NET_TRANSPORT"))
        .ok()
        .as_deref()
        .and_then(NetTransport::parse)
        .unwrap_or(NetTransport::Auto)
}

struct OutBuf<M> {
    items: Vec<(ChareId, M)>,
}

impl<M: Message> Sender<M> for OutBuf<M> {
    fn send(&mut self, to: ChareId, msg: M) {
        self.items.push((to, msg));
    }
}

/// A queued envelope; `wire` marks cross-process origin (its processing
/// bumps the consumed counter).
struct Queued<M> {
    to: ChareId,
    msg: M,
    wire: bool,
}

/// The networked engine (one per process; see module docs).
pub struct NetEngine<M: Message> {
    cfg: RuntimeConfig,
    role: Role,
    rank: u32,
    /// First / one-past-last PE owned by this process.
    pe_lo: u32,
    pe_hi: u32,
    chares: Vec<Option<Box<dyn Chare<M>>>>,
    pe_of: Vec<u32>,
    queues: Vec<VecDeque<Queued<M>>>,
    /// Aggregation lanes keyed by destination *process rank* (TRAM lanes
    /// mapped onto processes when `tram_2d` is set).
    agg: Aggregator<M>,
    grid: Grid2D,
    stats: Vec<PeStats>,
    reductions: ReductionSlots,
    out: OutBuf<M>,
    phase: u64,
    map_hash: Option<u64>,
    /// Batches that arrived tagged one phase ahead, held until we enter
    /// that phase.
    pending: Vec<(u64, Vec<(ChareId, M)>)>,
    comm: Option<CommHandle<M>>,
    children: Vec<Child>,
    /// Exit codes of reaped workers, indexed `rank - 1` (root only, filled
    /// by teardown; `None` = still running when force-killed or unknown).
    child_exits: Vec<Option<i32>>,
    kill_phase: Option<u64>,
    /// Fault injection: `(phase, ms)` at which this worker goes silent
    /// (comm + compute both sleep; sockets stay open).
    stall_at: Option<(u64, u64)>,
    /// Recovery snapshots committed so far (cumulative; bumped by the
    /// resilient driver via [`Self::note_checkpoint`]).
    recovery_checkpoints: u64,
    /// State rebuilds from a committed epoch so far (cumulative).
    recovery_restores: u64,
    /// Set when PHASE_END arrives while the worker loop is draining.
    pending_phase_end: bool,
    shut_down: bool,
    /// Shared-memory data plane (None on TCP-only and standalone runs).
    shm: Option<ShmPlane>,
    /// BATCH frames pushed into rings this phase (process-level count).
    shm_frames_sent: u64,
    /// Futex parks taken by the compute thread this phase.
    shm_parks: u64,
    /// Adaptive batch controller (None unless
    /// [`crate::AggregationConfig::adaptive`] is set on a networked role).
    adapt: Option<AdaptCtl>,
    /// Per-lane (destination rank) count of consecutive idle flushes that
    /// carried ≤ [`NEAR_EMPTY_MSGS`] envelopes. Reaching
    /// [`NEAR_EMPTY_STREAK`] arms the lane's eager grant.
    lane_idle_streak: Vec<u32>,
    /// Per-lane remaining eager flushes ([`EAGER_GRANT`] when armed; 0 =
    /// lane batches normally). Only populated when the adaptive controller
    /// is active — the heuristic is an extension of its eager regime.
    lane_eager_left: Vec<u32>,
    /// Largest batch level in force at any point this phase. The controller
    /// decays toward [`ADAPT_MIN_BATCH`] in the idle tail of a phase, so
    /// the end-of-phase level alone would under-report the operating point.
    agg_batch_peak: u64,
}

impl<M: Message> NetEngine<M> {
    /// Build the engine: decide this process's role, wire the socket mesh,
    /// spawn the comm thread.
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.net.n_procs >= 1, "need at least one process");
        assert!(
            cfg.n_pes.is_multiple_of(cfg.net.n_procs),
            "n_pes ({}) must divide evenly over n_procs ({})",
            cfg.n_pes,
            cfg.net.n_procs
        );
        let invocation = launch::next_invocation();
        let (role, rank, kill_phase, wenv) = match launch::worker_env() {
            Some(env) if env.target == invocation => {
                (Role::Worker, env.rank, env.kill_phase, Some(env))
            }
            Some(env) => {
                assert!(
                    env.target > invocation,
                    "worker rank {} ran past its target invocation ({invocation} > {})",
                    env.rank,
                    env.target
                );
                // Replay an earlier invocation standalone to stay in step
                // with the driver.
                (Role::Standalone, 0, None, None)
            }
            None if cfg.net.n_procs <= 1 => (Role::Standalone, 0, None, None),
            None => (Role::Root, 0, None, None),
        };
        let stall_at = wenv.as_ref().and_then(|e| e.stall);
        let ppp = cfg.n_pes / cfg.net.n_procs;
        let (pe_lo, pe_hi) = match role {
            Role::Standalone => (0, cfg.n_pes),
            _ => (rank * ppp, (rank + 1) * ppp),
        };
        // Heartbeats are symmetric config: every comm thread answers them,
        // but only the root's (rank 0) originates probes and classifies.
        let hb = (cfg.net.heartbeat_interval_ms > 0).then(|| comm::HeartbeatCfg {
            interval: Duration::from_millis(cfg.net.heartbeat_interval_ms as u64),
            timeout: Duration::from_millis(cfg.net.heartbeat_timeout_ms as u64),
        });
        let spawn_comm = move |rank: u32, sockets, bell: Option<Doorbell>| {
            comm::spawn::<M>(rank, sockets, bell, hb).unwrap_or_else(|e| {
                transport_abort(
                    role,
                    TransportError(format!("comm thread spawn failed: {e}")),
                )
            })
        };
        let shm_fail = |e: std::io::Error| -> ! {
            transport_abort(role, TransportError(format!("shm attach failed: {e}")))
        };
        let (comm, children, shm) = match role {
            Role::Standalone => (None, Vec::new(), None),
            Role::Root => {
                // The root is transport-authoritative: it resolves config +
                // env override here, and workers simply follow the region
                // fd it passes (or doesn't) down the exec.
                let transport = resolve_transport(&cfg);
                let mode = match transport {
                    NetTransport::Mixed => ShmMode::Mixed,
                    _ => ShmMode::All,
                };
                let region = match transport {
                    NetTransport::Tcp => None,
                    t => {
                        match ShmRegion::create(cfg.net.n_procs, cfg.net.shm_ring_bytes, invocation)
                        {
                            Ok(r) => Some(r),
                            Err(e) if t == NetTransport::Auto => {
                                eprintln!("[net] shm transport unavailable ({e}); using tcp");
                                None
                            }
                            Err(e) => transport_abort(
                                role,
                                TransportError(format!(
                                    "shm transport requested but unavailable: {e}"
                                )),
                            ),
                        }
                    }
                };
                let shm_env = region.as_ref().map(|r| (r.fd(), mode.env_str()));
                let (sockets, children) = launch::spawn_mesh_root(&cfg, invocation, shm_env)
                    .unwrap_or_else(|e| {
                        transport_abort(role, TransportError(format!("launch failed: {e}")))
                    });
                // Workers inherited the fd across their exec; re-arm
                // close-on-exec so no later spawn leaks the region.
                if let Some(r) = &region {
                    let _ = r.set_cloexec();
                }
                let plane = region.map(|r| {
                    ShmPlane::build(&r, mode, 0, cfg.net.n_procs).unwrap_or_else(|e| shm_fail(e))
                });
                let bell = plane.as_ref().map(|p| p.my_bell.clone());
                (Some(spawn_comm(0, sockets, bell)), children, plane)
            }
            Role::Worker => {
                let env = wenv.expect("worker role implies worker env");
                let plane = env.shm_fd.map(|fd| {
                    // `from_fd` validates magic/shape/invocation, so a stale
                    // fd inherited from an unrelated run dies loudly here
                    // instead of corrupting frames later.
                    let region = ShmRegion::from_fd(fd, invocation).unwrap_or_else(|e| shm_fail(e));
                    let mode = if env.shm_mixed {
                        ShmMode::Mixed
                    } else {
                        ShmMode::All
                    };
                    ShmPlane::build(&region, mode, env.rank, cfg.net.n_procs)
                        .unwrap_or_else(|e| shm_fail(e))
                });
                let sockets = launch::connect_mesh_worker(&env, &cfg).unwrap_or_else(|e| {
                    transport_abort(role, TransportError(format!("mesh setup failed: {e}")))
                });
                let bell = plane.as_ref().map(|p| p.my_bell.clone());
                (Some(spawn_comm(rank, sockets, bell)), Vec::new(), plane)
            }
        };
        let adapt = (cfg.aggregation.enabled
            && cfg.aggregation.adaptive
            && role != Role::Standalone)
            .then(|| AdaptCtl {
                // simlint: allow(R2) -- batch-controller telemetry window; never feeds the DES
                window_start: Instant::now(),
                emits: 0,
                msgs: 0,
                inline_ns: 0,
                comm_ns_mark: 0,
                cost_ewma: 0.0,
                gap_ewma: 0.0,
                eager: false,
            });
        let n_local = (pe_hi - pe_lo) as usize;
        NetEngine {
            cfg,
            role,
            rank,
            pe_lo,
            pe_hi,
            chares: Vec::new(),
            pe_of: Vec::new(),
            queues: (0..n_local).map(|_| VecDeque::new()).collect(),
            agg: Aggregator::new(cfg.net.n_procs, cfg.aggregation),
            grid: Grid2D::new(cfg.net.n_procs),
            stats: vec![PeStats::default(); n_local],
            reductions: ReductionSlots::default(),
            out: OutBuf { items: Vec::new() },
            phase: 0,
            map_hash: None,
            pending: Vec::new(),
            comm: None,
            children,
            child_exits: Vec::new(),
            kill_phase,
            stall_at,
            recovery_checkpoints: 0,
            recovery_restores: 0,
            pending_phase_end: false,
            shut_down: false,
            shm,
            shm_frames_sent: 0,
            shm_parks: 0,
            adapt,
            lane_idle_streak: vec![0; cfg.net.n_procs as usize],
            lane_eager_left: vec![0; cfg.net.n_procs as usize],
            agg_batch_peak: 0,
        }
        .with_comm(comm)
    }

    fn with_comm(mut self, comm: Option<CommHandle<M>>) -> Self {
        self.comm = comm;
        self
    }

    /// Register a chare. Every SPMD process registers the *full* array;
    /// only locally-owned chares are kept, the rest contribute their PE to
    /// the routing map.
    pub fn add_chare(&mut self, id: ChareId, pe: u32, chare: Box<dyn Chare<M>>) {
        assert!(pe < self.cfg.n_pes, "pe {pe} out of range");
        let idx = id.0 as usize;
        if self.pe_of.len() <= idx {
            self.pe_of.resize(idx + 1, u32::MAX);
            self.chares.resize_with(idx + 1, || None);
        }
        assert!(self.pe_of[idx] == u32::MAX, "duplicate chare id {idx}");
        self.pe_of[idx] = pe;
        if pe >= self.pe_lo && pe < self.pe_hi {
            self.chares[idx] = Some(chare);
        }
    }

    fn is_local_pe(&self, pe: u32) -> bool {
        pe >= self.pe_lo && pe < self.pe_hi
    }

    /// Abort with a typed [`TransportError`] (root panics with it as the
    /// payload; a worker exits with [`TRANSPORT_EXIT`]).
    fn transport_fail(&self, err: TransportError) -> ! {
        transport_abort(self.role, err)
    }

    fn fail_if_poisoned(&self) {
        if let Some(comm) = &self.comm {
            if let Some(err) = comm.shared.failure() {
                self.transport_fail(err);
            }
        }
    }

    fn deadline(&self) -> Option<Instant> {
        (self.cfg.watchdog_secs > 0)
            // simlint: allow(R2) -- hang watchdog arming; never feeds simulation state
            .then(|| Instant::now() + Duration::from_secs(u64::from(self.cfg.watchdog_secs)))
    }

    fn check_deadline(&self, deadline: Option<Instant>, state: &str) {
        if let Some(d) = deadline {
            // simlint: allow(R2) -- hang watchdog check; aborts the run, never feeds results
            if Instant::now() > d {
                let (p, c, idle) = self.cd_snapshot();
                panic!(
                    "net watchdog: rank {} stuck in phase {} ({state}) after {}s \
                     [produced={p} consumed={c} idle={idle}]",
                    self.rank, self.phase, self.cfg.watchdog_secs
                );
            }
        }
    }

    fn cd_snapshot(&self) -> (u64, u64, bool) {
        match &self.comm {
            Some(comm) => (
                comm.shared.produced.load(Ordering::SeqCst),
                comm.shared.consumed.load(Ordering::SeqCst),
                comm.shared.idle.load(Ordering::SeqCst),
            ),
            None => (0, 0, true),
        }
    }

    fn send_ctl(&self, dst: u32, ctl: &Ctl) {
        if let Some(comm) = &self.comm {
            let (kind, payload) = ctl.encode();
            let _ = comm.out_tx.send((dst, kind, payload));
        }
    }

    fn broadcast(&self, ctl: &Ctl) {
        for r in 1..self.cfg.net.n_procs {
            self.send_ctl(r, ctl);
        }
    }

    // ------------------------------------------------------------------
    // Routing and execution
    // ------------------------------------------------------------------

    fn route(&mut self, src_pe: u32, to: ChareId, msg: M) {
        let dst_pe = self.pe_of[to.0 as usize];
        debug_assert_ne!(dst_pe, u32::MAX, "send to unregistered chare {}", to.0);
        let lp = (src_pe - self.pe_lo) as usize;
        if self.role == Role::Standalone || self.is_local_pe(dst_pe) {
            let st = &mut self.stats[lp];
            if dst_pe == src_pe {
                st.sent_self += 1;
            } else {
                st.sent_intra += 1;
            }
            self.queues[(dst_pe - self.pe_lo) as usize].push_back(Queued {
                to,
                msg,
                wire: false,
            });
            return;
        }
        let st = &mut self.stats[lp];
        st.sent_remote += 1;
        st.remote_bytes += msg.size_bytes() as u64;
        let dst_proc = self.cfg.smp.process_of(dst_pe);
        let hop = if self.cfg.aggregation.tram_2d {
            self.grid.next_hop(self.rank, dst_proc)
        } else {
            dst_proc
        };
        match self.agg.push(hop, to, msg) {
            Some(flush) => self.emit(lp, flush, FlushCause::BatchFull),
            None => self.eager_flush(lp, hop),
        }
    }

    /// Relay an envelope that arrived at this process but belongs to
    /// another (TRAM intermediate hop over the process grid).
    fn forward(&mut self, to: ChareId, msg: M) {
        let dst_proc = self.cfg.smp.process_of(self.pe_of[to.0 as usize]);
        let hop = self.grid.next_hop(self.rank, dst_proc);
        self.stats[0].forwarded += 1;
        match self.agg.push(hop, to, msg) {
            Some(flush) => self.emit(0, flush, FlushCause::BatchFull),
            None => self.eager_flush(0, hop),
        }
    }

    /// In the latency-bound regime, flush the lane a push just landed in
    /// instead of letting the message wait for a batch that may never
    /// fill. Two triggers, both requiring the adaptive controller:
    /// globally, the controller converged to the minimum batch (every
    /// lane is latency-bound); per lane, a streak of near-empty idle
    /// flushes armed a bounded eager grant (see [`NEAR_EMPTY_STREAK`]) —
    /// that lane's traffic is too sparse to batch even though aggregate
    /// load keeps the controller at a larger batch size.
    fn eager_flush(&mut self, lp: usize, hop: u32) {
        let Some(a) = self.adapt.as_ref() else { return };
        let granted = self
            .lane_eager_left
            .get(hop as usize)
            .is_some_and(|&left| left > 0);
        if !a.eager && !granted {
            return;
        }
        if let Some(packet) = self.agg.flush_lane(hop) {
            if !a.eager && granted {
                if let Some(left) = self.lane_eager_left.get_mut(hop as usize) {
                    *left -= 1;
                }
            }
            self.emit(lp, Flush::Packet(packet), FlushCause::Eager);
        }
    }

    /// Serialize a flush onto the data plane. `produced` is bumped before
    /// the frame leaves the compute thread — the CD soundness invariant.
    ///
    /// Shm-linked destinations get the frame pushed straight into the SPSC
    /// ring, compute thread to compute thread — no comm-thread hop.
    /// Oversized frames (> half the ring) and TCP links go through the
    /// comm thread; the two planes may interleave freely because batch
    /// delivery order within a phase is not part of the determinism
    /// contract.
    fn emit(&mut self, lp: usize, flush: Flush<M>, cause: FlushCause) {
        let t0 = self
            .adapt
            .as_ref()
            // simlint: allow(R2) -- flush-cost telemetry for the adaptive batch controller; never feeds the DES
            .map(|_| Instant::now());
        let (dst_rank, payload, n_envs) = match flush {
            Flush::Packet(packet) => {
                let payload = wire::encode_batch(self.phase, self.rank, &packet.envelopes);
                let n = packet.envelopes.len() as u64;
                self.agg.recycle(packet.envelopes);
                (packet.dst_pe, payload, n)
            }
            Flush::Single {
                dst_pe, to, msg, ..
            } => {
                let env = [Envelope { to, msg }];
                (dst_pe, wire::encode_batch(self.phase, self.rank, &env), 1)
            }
        };
        {
            let comm = self.comm.as_ref().expect("remote flush without comm");
            comm.shared.produced.fetch_add(n_envs, Ordering::SeqCst);
        }
        let mut via_ring = false;
        if let Some(mut plane) = self.shm.take() {
            let dst = dst_rank as usize;
            let fits = plane.producers[dst]
                .as_ref()
                .is_some_and(|p| payload.len() + 5 <= p.max_frame());
            if fits {
                loop {
                    let pushed = plane.producers[dst]
                        .as_ref()
                        .is_some_and(|p| p.try_push(wire::kind::BATCH, &payload));
                    if pushed {
                        break;
                    }
                    // Ring full: drain our own inbound rings while
                    // retrying so two mutually-full peers cannot deadlock
                    // (each side's consumer frees the other's producer).
                    self.drain_plane(&mut plane);
                    std::hint::spin_loop();
                }
                if let Some(bell) = &plane.bells[dst] {
                    bell.ring();
                }
                self.shm_frames_sent += 1;
                via_ring = true;
            }
            self.shm = Some(plane);
        }
        if !via_ring {
            let comm = self.comm.as_ref().expect("remote flush without comm");
            let _ = comm.out_tx.send((dst_rank, wire::kind::BATCH, payload));
        }
        let st = &mut self.stats[lp];
        st.network_packets += 1;
        match cause {
            FlushCause::BatchFull => {
                st.wire_flush_batch += 1;
                st.wire_msgs_batch += n_envs;
                // A lane that fills whole batches is not near-empty:
                // revoke any eager grant and restart its qualification.
                if let Some(s) = self.lane_idle_streak.get_mut(dst_rank as usize) {
                    *s = 0;
                }
                if let Some(left) = self.lane_eager_left.get_mut(dst_rank as usize) {
                    *left = 0;
                }
            }
            FlushCause::Idle => {
                st.wire_flush_idle += 1;
                st.wire_msgs_idle += n_envs;
            }
            FlushCause::Eager => {
                st.wire_flush_eager += 1;
                st.wire_msgs_eager += n_envs;
            }
        }
        if let Some(t0) = t0 {
            let spent = t0.elapsed().as_nanos() as u64;
            let due = match &mut self.adapt {
                Some(a) => {
                    a.emits += 1;
                    a.msgs += n_envs;
                    a.inline_ns += spent;
                    a.emits >= ADAPT_WINDOW
                }
                None => false,
            };
            if due {
                self.retune_batch();
            }
        }
    }

    /// Close an adaptive-controller window: fold this window's observed
    /// flush cost and message rate into the EWMAs and retune the lanes to
    /// `B* = sqrt(2·cost/gap)` (see [`AdaptCtl`]).
    fn retune_batch(&mut self) {
        let comm_ns = self
            .comm
            .as_ref()
            .map_or(0, |c| c.shared.flush_ns.load(Ordering::SeqCst));
        let Some(a) = &mut self.adapt else { return };
        let wall = a.window_start.elapsed().as_nanos() as f64;
        let mut target = None;
        if a.msgs > 0 && a.emits > 0 && wall > 0.0 {
            let cost =
                (a.inline_ns + comm_ns.saturating_sub(a.comm_ns_mark)) as f64 / a.emits as f64;
            let gap = (wall / a.msgs as f64).max(1.0);
            a.cost_ewma = if a.cost_ewma > 0.0 {
                a.cost_ewma + ADAPT_ALPHA * (cost - a.cost_ewma)
            } else {
                cost
            };
            a.gap_ewma = if a.gap_ewma > 0.0 {
                a.gap_ewma + ADAPT_ALPHA * (gap - a.gap_ewma)
            } else {
                gap
            };
            let b = (2.0 * a.cost_ewma / a.gap_ewma).sqrt() as u32;
            let clamped = b.clamp(ADAPT_MIN_BATCH, ADAPT_MAX_BATCH);
            a.eager = clamped <= ADAPT_MIN_BATCH;
            target = Some(clamped);
        }
        a.emits = 0;
        a.msgs = 0;
        a.inline_ns = 0;
        a.comm_ns_mark = comm_ns;
        // simlint: allow(R2) -- batch-controller telemetry window; never feeds the DES
        a.window_start = Instant::now();
        if let Some(b) = target {
            self.agg.set_max_batch(b);
            self.agg_batch_peak = self.agg_batch_peak.max(u64::from(b));
        }
    }

    /// Drain every inbound ring of `plane` into the local queues (the
    /// plane is passed explicitly so [`Self::emit`]'s backpressure loop can
    /// drain while holding it). Returns whether current-phase work arrived.
    fn drain_plane(&mut self, plane: &mut ShmPlane) -> bool {
        let mut worked = false;
        for src in 0..plane.consumers.len() {
            let Some((cons, fb)) = plane.consumers[src].as_mut() else {
                continue;
            };
            let polled = match fb.poll(cons) {
                Ok(p) => p,
                Err(e) => self.transport_fail(TransportError(format!(
                    "shm ring from rank {src} corrupt: {e}"
                ))),
            };
            for (kind, payload) in polled.frames {
                worked |= self.handle_ring_frame(src as u32, kind, &payload);
            }
        }
        worked
    }

    /// Poll the shm data plane (no-op on TCP-only runs). Returns whether
    /// current-phase work arrived.
    fn poll_rings(&mut self) -> bool {
        let Some(mut plane) = self.shm.take() else {
            return false;
        };
        let worked = self.drain_plane(&mut plane);
        self.shm = Some(plane);
        worked
    }

    /// One frame lifted off a ring — same phase discipline as TCP batches:
    /// current phase is enqueued, next phase is stashed, anything else is a
    /// protocol error.
    fn handle_ring_frame(&mut self, src: u32, kind: u8, payload: &[u8]) -> bool {
        if kind != wire::kind::BATCH {
            self.transport_fail(TransportError(format!(
                "unexpected frame kind {kind} on shm ring from rank {src}"
            )));
        }
        let Some((phase, _src, envelopes)) = wire::decode_batch::<M>(payload) else {
            self.transport_fail(TransportError(format!(
                "malformed BATCH on shm ring from rank {src}"
            )))
        };
        if phase == self.phase {
            self.enqueue_wire(envelopes);
            true
        } else if phase == self.phase + 1 {
            self.pending.push((phase, envelopes));
            false
        } else {
            panic!(
                "net protocol error: ring batch for phase {phase} while rank {} is in {}",
                self.rank, self.phase
            );
        }
    }

    fn rings_have_inbound(&self) -> bool {
        self.shm.as_ref().is_some_and(ShmPlane::has_inbound)
    }

    fn comm_has_event(&self) -> bool {
        self.comm.as_ref().is_some_and(|c| !c.in_rx.is_empty())
    }

    /// Idle flush of every dirty lane. Returns whether anything left.
    ///
    /// Each flushed packet is also a lane-occupancy observation for the
    /// near-empty heuristic: a streak of [`NEAR_EMPTY_STREAK`] idle
    /// flushes carrying ≤ [`NEAR_EMPTY_MSGS`] envelopes arms the lane's
    /// eager grant (the lane keeps paying idle-detection latency for a
    /// batch that never fills), while a well-filled idle flush resets it.
    fn flush_idle(&mut self) -> bool {
        if self.agg.is_empty() {
            return false;
        }
        let packets = self.agg.flush_all();
        let any = !packets.is_empty();
        for packet in packets {
            if self.adapt.is_some() {
                let dst = packet.dst_pe as usize;
                if packet.envelopes.len() <= NEAR_EMPTY_MSGS {
                    if let Some(s) = self.lane_idle_streak.get_mut(dst) {
                        *s = s.saturating_add(1);
                        if *s >= NEAR_EMPTY_STREAK {
                            if let Some(left) = self.lane_eager_left.get_mut(dst) {
                                *left = EAGER_GRANT;
                            }
                        }
                    }
                } else if let Some(s) = self.lane_idle_streak.get_mut(dst) {
                    *s = 0;
                }
            }
            self.emit(0, Flush::Packet(packet), FlushCause::Idle);
        }
        any
    }

    fn process_one(&mut self, lp: usize, q: Queued<M>) {
        let idx = q.to.0 as usize;
        let dst_pe = self.pe_of[idx];
        if !self.is_local_pe(dst_pe) {
            // TRAM intermediate hop.
            debug_assert!(self.cfg.aggregation.tram_2d);
            if q.wire {
                self.consume_one();
            }
            self.forward(q.to, q.msg);
            return;
        }
        let mut chare = self.chares[idx]
            .take()
            .unwrap_or_else(|| panic!("message for unregistered chare {idx}"));
        let start = Instant::now(); // simlint: allow(R2) -- busy_ns load metric only; load balancing consumes it between phases, DES state never does
        {
            let mut ctx = Ctx {
                sender: &mut self.out,
                reductions: &mut self.reductions,
                self_id: q.to,
            };
            chare.receive(q.msg, &mut ctx);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        self.chares[idx] = Some(chare);
        let st = &mut self.stats[lp];
        st.busy_ns += elapsed;
        st.processed += 1;
        if q.wire {
            self.consume_one();
        }
        let mut items = std::mem::take(&mut self.out.items);
        let pe = self.pe_lo + lp as u32;
        for (to, msg) in items.drain(..) {
            self.route(pe, to, msg);
        }
        self.out.items = items;
    }

    fn consume_one(&self) {
        if let Some(comm) = &self.comm {
            comm.shared.consumed.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn enqueue_wire(&mut self, envelopes: Vec<(ChareId, M)>) {
        for (to, msg) in envelopes {
            let dst_pe = self.pe_of[to.0 as usize];
            let lp = if self.is_local_pe(dst_pe) {
                (dst_pe - self.pe_lo) as usize
            } else {
                0 // TRAM relay: park on the first local PE's queue
            };
            self.queues[lp].push_back(Queued {
                to,
                msg,
                wire: true,
            });
        }
    }

    /// Drain every local queue once (quantum-bounded). Returns whether any
    /// message was processed.
    fn drain_queues(&mut self) -> bool {
        let mut worked = false;
        for lp in 0..self.queues.len() {
            for _ in 0..QUANTUM {
                match self.queues[lp].pop_front() {
                    Some(q) => {
                        self.process_one(lp, q);
                        worked = true;
                    }
                    None => break,
                }
            }
        }
        worked
    }

    /// Move batches stashed for the current phase into the queues.
    fn adopt_pending(&mut self) {
        let phase = self.phase;
        let mut adopted = Vec::new();
        self.pending.retain_mut(|(p, envs)| {
            if *p == phase {
                adopted.push(std::mem::take(envs));
                false
            } else {
                true
            }
        });
        for envs in adopted {
            self.enqueue_wire(envs);
        }
    }

    fn inject(&mut self, injections: Vec<(ChareId, M)>) {
        for (to, msg) in injections {
            let dst_pe = self.pe_of[to.0 as usize];
            debug_assert_ne!(
                dst_pe,
                u32::MAX,
                "injection for unregistered chare {}",
                to.0
            );
            if self.role == Role::Standalone || self.is_local_pe(dst_pe) {
                self.queues[(dst_pe - self.pe_lo) as usize].push_back(Queued {
                    to,
                    msg,
                    wire: false,
                });
            }
            // Non-local injections are dropped here: the owning process's
            // SPMD driver passes the identical list and injects them
            // itself, so nothing is lost and nothing crosses the wire.
        }
    }

    // ------------------------------------------------------------------
    // Phase loop
    // ------------------------------------------------------------------

    /// Run one phase to global completion.
    pub fn run_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        self.phase += 1;
        for s in &mut self.stats {
            *s = PeStats::default();
        }
        self.reductions.clear();
        if self.map_hash.is_none() {
            self.map_hash = Some(wire::map_hash(&self.pe_of));
        }
        self.shm_frames_sent = 0;
        self.shm_parks = 0;
        self.agg_batch_peak = u64::from(self.agg.max_batch());
        if let Some(comm) = &self.comm {
            let sh = &comm.shared;
            sh.produced.store(0, Ordering::SeqCst);
            sh.consumed.store(0, Ordering::SeqCst);
            sh.idle.store(false, Ordering::SeqCst);
            sh.frames_sent.store(0, Ordering::SeqCst);
            sh.frames_recv.store(0, Ordering::SeqCst);
            sh.bytes_sent.store(0, Ordering::SeqCst);
            sh.bytes_recv.store(0, Ordering::SeqCst);
            sh.coalesced_flushes.store(0, Ordering::SeqCst);
            // flush_ns stays cumulative — the adaptive controller reads
            // deltas of it across phase boundaries.
            for r in sh.replies().iter_mut() {
                *r = comm::CdReplyState::default();
            }
            // Last: only now may probes for this phase be answered idle.
            sh.cur_phase.store(self.phase, Ordering::SeqCst);
        }
        match self.role {
            Role::Standalone => {
                self.inject(injections);
                self.standalone_loop();
                self.stats[0].agg_batch = u64::from(self.agg.max_batch());
                PhaseStats {
                    per_pe: self.stats.clone(),
                    reductions: self.reductions.clone(),
                }
            }
            Role::Root => self.root_phase(injections),
            Role::Worker => self.worker_phase(injections),
        }
    }

    fn standalone_loop(&mut self) {
        loop {
            if self.drain_queues() {
                continue;
            }
            if !self.flush_idle() {
                return;
            }
        }
    }

    fn root_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        let deadline = self.deadline();
        self.broadcast(&Ctl::PhaseStart {
            phase: self.phase,
            n_chares: self.pe_of.len() as u32,
            map_hash: self.map_hash.unwrap(),
        });
        self.adopt_pending();
        self.inject(injections);
        self.root_compute_loop(deadline);
        // Completion fired globally: close the phase and merge stats.
        self.broadcast(&Ctl::PhaseEnd { phase: self.phase });
        self.harvest_wire_counters();
        let n_pes = self.cfg.n_pes as usize;
        let mut per_pe = vec![PeStats::default(); n_pes];
        for (i, st) in self.stats.iter().enumerate() {
            per_pe[self.pe_lo as usize + i] = *st;
        }
        let mut reductions = self.reductions.clone();
        let mut got = vec![false; self.cfg.net.n_procs as usize];
        got[0] = true;
        while got.iter().any(|g| !g) {
            self.fail_if_poisoned();
            self.check_deadline(deadline, "gathering worker stats");
            // Next-phase batches can already be landing on the rings.
            self.poll_rings();
            let comm = self.comm.as_ref().expect("root has comm");
            match comm.in_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Event::Stats {
                    rank,
                    reductions: r,
                    per_pe: pp,
                }) => {
                    reductions.merge(&r);
                    for (pe, st) in pp {
                        per_pe[pe as usize] = st;
                    }
                    got[rank as usize] = true;
                }
                Ok(Event::Batch { phase, envelopes }) if phase == self.phase + 1 => {
                    self.pending.push((phase, envelopes));
                }
                Ok(Event::TransportError(e)) => self.transport_fail(e),
                Ok(other) => panic!(
                    "net protocol error: unexpected {} while gathering stats",
                    event_name(&other)
                ),
                Err(_) => {}
            }
        }
        let result = PhaseStats { per_pe, reductions };
        self.broadcast(&Ctl::PhaseResult {
            reductions: result.reductions.clone(),
            per_pe: result.per_pe.clone(),
        });
        result
    }

    /// The root's compute + CD loop: work while there is work, probe the
    /// workers while idle, return once two consecutive waves agree the
    /// system is quiet.
    fn root_compute_loop(&mut self, deadline: Option<Instant>) {
        let n_procs = self.cfg.net.n_procs;
        let mut wave = 0u64;
        let mut snapshot: Option<(u64, u64)> = None;
        loop {
            self.fail_if_poisoned();
            self.check_deadline(deadline, "completion detection");
            let mut worked = self.drain_queues();
            worked |= self.drain_inbound();
            if worked {
                self.set_idle(false);
                snapshot = None;
                continue;
            }
            if self.flush_idle() {
                snapshot = None;
                continue;
            }
            self.set_idle(true);
            if n_procs == 1 {
                return;
            }
            // Probe wave.
            wave += 1;
            self.broadcast(&Ctl::CdProbe {
                phase: self.phase,
                wave,
            });
            match self.collect_wave(wave, deadline) {
                None => {
                    // Work arrived mid-wave; abandon it.
                    snapshot = None;
                    continue;
                }
                Some((sum_p, sum_c, all_idle)) => {
                    let (own_p, own_c, _) = self.cd_snapshot();
                    let totals = (sum_p + own_p, sum_c + own_c);
                    if all_idle && totals.0 == totals.1 {
                        if snapshot == Some(totals) {
                            return; // two matching waves: globally quiet
                        }
                        snapshot = Some(totals);
                    } else {
                        snapshot = None;
                    }
                }
            }
        }
    }

    /// Wait until every worker answered `wave`. Returns `None` if local
    /// work arrived meanwhile (the wave is abandoned), else the workers'
    /// summed counters and combined idleness.
    fn collect_wave(&mut self, wave: u64, deadline: Option<Instant>) -> Option<(u64, u64, bool)> {
        loop {
            self.fail_if_poisoned();
            self.check_deadline(deadline, "waiting for CD replies");
            if self.drain_inbound() {
                self.set_idle(false);
                return None;
            }
            let comm = self.comm.as_ref().expect("root has comm");
            let replies = comm.shared.replies();
            if replies.iter().all(|r| r.wave >= wave) {
                let sum_p = replies.iter().map(|r| r.produced).sum();
                let sum_c = replies.iter().map(|r| r.consumed).sum();
                let all_idle = replies.iter().all(|r| r.idle && r.wave == wave);
                return Some((sum_p, sum_c, all_idle));
            }
            drop(replies);
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Drain inbound events (rings first, then the comm thread's channel)
    /// without blocking. Returns whether any new work was enqueued. Only
    /// valid inside a phase's main loop.
    fn drain_inbound(&mut self) -> bool {
        let mut worked = self.poll_rings();
        while let Some(ev) = self.comm.as_ref().and_then(|c| c.in_rx.try_recv().ok()) {
            match ev {
                Event::Batch { phase, envelopes } => {
                    if phase == self.phase {
                        self.enqueue_wire(envelopes);
                        worked = true;
                    } else if phase == self.phase + 1 {
                        self.pending.push((phase, envelopes));
                    } else {
                        panic!(
                            "net protocol error: batch for phase {phase} while rank {} is in {}",
                            self.rank, self.phase
                        );
                    }
                }
                Event::PhaseEnd { phase } if self.role == Role::Worker => {
                    assert_eq!(phase, self.phase, "PHASE_END for wrong phase");
                    // Handled by the worker loop via the flag below.
                    self.pending_phase_end = true;
                }
                Event::TransportError(e) => self.transport_fail(e),
                Event::Shutdown => self.shutdown_mid_run("mid-phase"),
                other => panic!(
                    "net protocol error: unexpected {} in phase {} on rank {}",
                    event_name(&other),
                    self.phase,
                    self.rank
                ),
            }
        }
        worked
    }

    /// SHUTDOWN arrived while this rank still had protocol left to run.
    /// On a worker that means the root aborted (e.g. its transport failed
    /// after another worker died) — exit cleanly with [`TRANSPORT_EXIT`]
    /// rather than crash. On the root it can only be a protocol bug.
    fn shutdown_mid_run(&self, state: &str) -> ! {
        if self.role == Role::Worker {
            self.transport_fail(TransportError(format!(
                "root shut down while rank {} was {state} (phase {}) — treating as root abort",
                self.rank, self.phase
            )));
        }
        panic!(
            "net protocol error: shutdown while rank {} is {state} (phase {})",
            self.rank, self.phase
        );
    }

    fn set_idle(&self, idle: bool) {
        if let Some(comm) = &self.comm {
            comm.shared.idle.store(idle, Ordering::SeqCst);
        }
    }

    fn worker_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        let deadline = self.deadline();
        self.wait_phase_start(deadline);
        if self.kill_phase == Some(self.phase) {
            // Fault injection: die abruptly, mid-protocol, so the root's
            // transport — not a wrong curve — reports the loss.
            eprintln!(
                "[net] rank {} killing itself at phase {} (fault injection)",
                self.rank, self.phase
            );
            std::process::exit(KILL_EXIT);
        }
        if let Some((phase, ms)) = self.stall_at {
            if phase == self.phase {
                // Fault injection: go silent without dying. The comm
                // thread sleeps the same window (it swaps `stall_ms` at
                // its next loop turn), so no probe, heartbeat, or batch is
                // answered — indistinguishable from SIGSTOP, which is
                // exactly what the stalled-peer detector must classify.
                self.stall_at = None;
                eprintln!(
                    "[net] rank {} stalling {ms}ms at phase {} (fault injection)",
                    self.rank, self.phase
                );
                if let Some(comm) = &self.comm {
                    comm.shared.stall_ms.store(ms, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        self.adopt_pending();
        self.inject(injections);
        self.pending_phase_end = false;
        loop {
            self.fail_if_poisoned();
            self.check_deadline(deadline, "worker compute loop");
            let mut worked = self.drain_queues();
            worked |= self.drain_inbound();
            if self.pending_phase_end {
                break;
            }
            if worked {
                self.set_idle(false);
                continue;
            }
            if self.flush_idle() {
                continue;
            }
            self.set_idle(true);
            // Wait for the next event; CD probes are answered by the comm
            // thread meanwhile. With the shm plane active: spin briefly
            // over the rings (keeps same-host ping-pong sub-µs), then
            // futex-park on our doorbell — remote producers ring it after
            // every push and our comm thread after every TCP event, and
            // the park itself is bounded by [`PARK_TIMEOUT`] so liveness
            // never hangs off a wake-up.
            if let Some(bell) = self.shm.as_ref().map(|p| p.my_bell.clone()) {
                let mut hot = false;
                for _ in 0..PARK_SPIN {
                    if self.rings_have_inbound() || self.comm_has_event() {
                        hot = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                if !hot {
                    let seen = bell.read_seq();
                    // Re-check both sources after publishing intent to
                    // park (via the seq snapshot) — a push between the
                    // check and the futex call bumps seq and aborts the
                    // park.
                    if !self.rings_have_inbound()
                        && !self.comm_has_event()
                        && bell.park(seen, PARK_TIMEOUT)
                    {
                        self.shm_parks += 1;
                    }
                }
                continue;
            }
            let comm = self.comm.as_ref().expect("worker has comm");
            if comm
                .in_rx
                .recv_timeout(Duration::from_micros(200))
                .is_ok_and(|ev| {
                    // Re-inject into the normal path.
                    self.requeue_event(ev);
                    true
                })
            {
                continue;
            }
        }
        // Phase closed globally; report and await the merged result.
        self.harvest_wire_counters();
        let per_pe_local: Vec<(u32, PeStats)> = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, st)| (self.pe_lo + i as u32, *st))
            .collect();
        self.send_ctl(
            0,
            &Ctl::Stats {
                rank: self.rank,
                reductions: self.reductions.clone(),
                per_pe: per_pe_local,
            },
        );
        self.wait_phase_result(deadline)
    }

    /// Push one blocking-received event through the same handling as
    /// [`Self::drain_inbound`].
    fn requeue_event(&mut self, ev: Event<M>) {
        match ev {
            Event::Batch { phase, envelopes } => {
                if phase == self.phase {
                    self.set_idle(false);
                    self.enqueue_wire(envelopes);
                } else if phase == self.phase + 1 {
                    self.pending.push((phase, envelopes));
                } else {
                    panic!(
                        "net protocol error: batch for phase {phase} while rank {} is in {}",
                        self.rank, self.phase
                    );
                }
            }
            Event::PhaseEnd { phase } => {
                assert_eq!(phase, self.phase, "PHASE_END for wrong phase");
                self.pending_phase_end = true;
            }
            Event::TransportError(e) => self.transport_fail(e),
            Event::Shutdown => self.shutdown_mid_run("mid-phase"),
            other => panic!(
                "net protocol error: unexpected {} in phase {} on rank {}",
                event_name(&other),
                self.phase,
                self.rank
            ),
        }
    }

    fn wait_phase_start(&mut self, deadline: Option<Instant>) {
        loop {
            // A faster peer may already be pushing this phase's batches
            // onto the rings while PHASE_START is still in flight on TCP.
            self.poll_rings();
            // Drain queued events before honouring the failure flag (see
            // wait_phase_result).
            let comm = self.comm.as_ref().expect("worker has comm");
            match comm.in_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Event::PhaseStart {
                    phase,
                    n_chares,
                    map_hash,
                }) => {
                    assert_eq!(
                        phase, self.phase,
                        "rank {} expected phase {} but root started {phase} — SPMD drivers diverged",
                        self.rank, self.phase
                    );
                    assert!(
                        n_chares as usize == self.pe_of.len() && Some(map_hash) == self.map_hash,
                        "rank {} built a different chare topology than the root \
                         ({} chares, map hash {:#x} vs root's {} / {:#x}) — SPMD replay diverged",
                        self.rank,
                        self.pe_of.len(),
                        self.map_hash.unwrap_or(0),
                        n_chares,
                        map_hash
                    );
                    return;
                }
                Ok(Event::Batch { phase, envelopes }) => {
                    // A faster peer already entered this phase.
                    if phase == self.phase {
                        self.enqueue_wire(envelopes);
                    } else if phase == self.phase + 1 {
                        self.pending.push((phase, envelopes));
                    } else {
                        panic!(
                            "net protocol error: batch for phase {phase} before PHASE_START of {}",
                            self.phase
                        );
                    }
                }
                Ok(Event::Shutdown) => self.shutdown_mid_run("awaiting PHASE_START"),
                Ok(Event::TransportError(e)) => self.transport_fail(e),
                Ok(other) => panic!(
                    "net protocol error: unexpected {} while awaiting PHASE_START",
                    event_name(&other)
                ),
                Err(_) => {
                    self.fail_if_poisoned();
                    self.check_deadline(deadline, "waiting for PHASE_START");
                }
            }
        }
    }

    fn wait_phase_result(&mut self, deadline: Option<Instant>) -> PhaseStats {
        loop {
            // Next-phase batches can land on the rings while we wait.
            self.poll_rings();
            // Queued events outrank the failure flag: the root may close
            // its sockets right after broadcasting PHASE_RESULT of the
            // final phase, and that EOF must not mask a result already
            // sitting in the channel.
            let comm = self.comm.as_ref().expect("worker has comm");
            match comm.in_rx.recv_timeout(Duration::from_millis(5)) {
                Ok(Event::PhaseResult { reductions, per_pe }) => {
                    return PhaseStats { per_pe, reductions };
                }
                Ok(Event::Batch { phase, envelopes }) if phase == self.phase + 1 => {
                    self.pending.push((phase, envelopes));
                }
                Ok(Event::TransportError(e)) => self.transport_fail(e),
                Ok(Event::Shutdown) => self.shutdown_mid_run("awaiting PHASE_RESULT"),
                Ok(other) => panic!(
                    "net protocol error: unexpected {} while awaiting PHASE_RESULT",
                    event_name(&other)
                ),
                Err(_) => {
                    self.fail_if_poisoned();
                    self.check_deadline(deadline, "waiting for PHASE_RESULT");
                }
            }
        }
    }

    /// Fold the comm thread's wire counters into the first local PE's
    /// stats (they are per-process quantities; DESIGN.md §8 documents the
    /// attribution).
    fn harvest_wire_counters(&mut self) {
        let ring_frames = self.shm_frames_sent;
        let parks = self.shm_parks;
        let batch_level = self.agg_batch_peak.max(u64::from(self.agg.max_batch()));
        if let Some(comm) = &self.comm {
            let sh = &comm.shared;
            let st = &mut self.stats[0];
            st.wire_frames_sent += sh.frames_sent.load(Ordering::SeqCst);
            st.wire_frames_recv += sh.frames_recv.load(Ordering::SeqCst);
            st.wire_bytes_sent += sh.bytes_sent.load(Ordering::SeqCst);
            st.wire_bytes_recv += sh.bytes_recv.load(Ordering::SeqCst);
            st.wire_coalesced_flushes += sh.coalesced_flushes.load(Ordering::SeqCst);
            st.shm_frames_sent += ring_frames;
            st.shm_parks += parks;
            st.agg_batch = st.agg_batch.max(batch_level);
            // Cumulative levels, re-attributed each phase (the per-phase
            // stats were zeroed at phase start, so += is assignment here).
            st.recovery_checkpoints += self.recovery_checkpoints;
            st.recovery_restores += self.recovery_restores;
        }
    }

    // ------------------------------------------------------------------
    // Recovery hooks (consumed by the resilient driver in `core`)
    // ------------------------------------------------------------------

    /// This process's rank (0 for the root and standalone runs).
    pub fn net_rank(&self) -> u32 {
        self.rank
    }

    /// Serialize every locally-owned chare that opts into checkpointing
    /// (`Chare::snapshot` returning `Some`), as `(chare id, bytes)` pairs.
    /// Only meaningful between phases, when the system is quiescent.
    pub fn snapshot_chares(&self) -> Vec<(u32, Vec<u8>)> {
        self.chares
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref()
                    .and_then(|c| c.snapshot().map(|bytes| (i as u32, bytes)))
            })
            .collect()
    }

    /// Record that a recovery snapshot was committed (feeds the
    /// `recovery_checkpoints` stat).
    pub fn note_checkpoint(&mut self) {
        self.recovery_checkpoints += 1;
    }

    /// Record that state was rebuilt from a committed epoch (feeds the
    /// `recovery_restores` stat).
    pub fn note_restore(&mut self) {
        self.recovery_restores += 1;
    }

    // ------------------------------------------------------------------
    // Teardown
    // ------------------------------------------------------------------

    /// Orderly teardown. On the root: broadcast SHUTDOWN, reap workers.
    /// On a worker: wait for SHUTDOWN, then **exit the process** — an SPMD
    /// worker must never outlive its run and go on executing driver code.
    fn teardown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        match self.role {
            Role::Standalone => {}
            Role::Root => {
                if let Some(comm) = &self.comm {
                    self.broadcast(&Ctl::Shutdown);
                    comm.shared.stop.store(true, Ordering::SeqCst);
                }
                if let Some(comm) = &mut self.comm {
                    if let Some(join) = comm.join.take() {
                        let _ = join.join();
                    }
                }
                // After a transport failure the dead worker will never
                // answer SHUTDOWN — don't make the recovery driver's
                // retry loop pay the full orderly-teardown grace for it.
                let grace = if self
                    .comm
                    .as_ref()
                    .is_some_and(|c| c.shared.failure().is_some())
                {
                    Duration::from_secs(1)
                } else {
                    Duration::from_secs(10)
                };
                let deadline = Instant::now() + grace; // simlint: allow(R2) -- teardown reaping timeout, after all simulation output is final
                self.child_exits = self
                    .children
                    .iter_mut()
                    .map(|child| loop {
                        match child.try_wait() {
                            Ok(Some(status)) => break status.code(),
                            // simlint: allow(R2) -- teardown reaping timeout, never observed by the DES
                            Ok(None) if Instant::now() > deadline => {
                                let _ = child.kill();
                                break child.wait().ok().and_then(|s| s.code());
                            }
                            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                            Err(_) => break None,
                        }
                    })
                    .collect();
            }
            Role::Worker => {
                if std::thread::panicking() {
                    // Let the panic surface (stderr is inherited); the
                    // process dies with the test harness and the root sees
                    // the EOF.
                    if let Some(comm) = &self.comm {
                        comm.shared.stop.store(true, Ordering::SeqCst);
                    }
                    return;
                }
                // Drain until the root's SHUTDOWN (bounded), then leave.
                if let Some(comm) = &self.comm {
                    // simlint: allow(R2) -- bounded teardown drain, post-simulation
                    let deadline = Instant::now() + Duration::from_secs(10);
                    // simlint: allow(R2) -- bounded teardown drain, post-simulation
                    while Instant::now() < deadline {
                        match comm.in_rx.recv_timeout(Duration::from_millis(10)) {
                            Ok(Event::Shutdown) | Err(_) if comm.shared.failure().is_some() => {
                                break
                            }
                            Ok(Event::Shutdown) => break,
                            _ => {}
                        }
                    }
                    comm.shared.stop.store(true, Ordering::SeqCst);
                }
                std::process::exit(0);
            }
        }
    }

    /// Tear down and return the locally-owned chares (the root's share in
    /// a multi-process run; workers exit inside). `Simulator::dismantle`
    /// and other full-array reclamation is therefore unsupported under the
    /// net engine — use it only for result extraction on single-process
    /// configurations.
    pub fn into_chares(mut self) -> Vec<(ChareId, Box<dyn Chare<M>>)> {
        self.teardown();
        let chares = std::mem::take(&mut self.chares);
        chares
            .into_iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (ChareId(i as u32), c)))
            .collect()
    }

    /// Tear down (if not already done) and return every worker's exit
    /// code, indexed `rank - 1`. Root only — empty on workers and
    /// standalone runs. The fault-injection tests use this to assert that
    /// a killed worker exited with [`KILL_EXIT`] while every *survivor*
    /// shut down cleanly with [`TRANSPORT_EXIT`] rather than panicking.
    pub fn reap_workers(&mut self) -> Vec<Option<i32>> {
        self.teardown();
        self.child_exits.clone()
    }
}

impl<M: Message> Drop for NetEngine<M> {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn event_name<M: Message>(ev: &Event<M>) -> &'static str {
    match ev {
        Event::Batch { .. } => "BATCH",
        Event::PhaseStart { .. } => "PHASE_START",
        Event::PhaseEnd { .. } => "PHASE_END",
        Event::PhaseResult { .. } => "PHASE_RESULT",
        Event::Stats { .. } => "STATS",
        Event::Shutdown => "SHUTDOWN",
        Event::TransportError(_) => "TRANSPORT_ERROR",
    }
}
