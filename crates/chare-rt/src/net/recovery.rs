//! Rollback recovery for the networked engine (DESIGN.md §10).
//!
//! Charm++'s production value at Blue Waters scale came as much from
//! checkpoint/restart as from raw messaging: at realistic contact-network
//! scale the mean time between node failures is shorter than a campaign of
//! runs, so a long-lived job must survive process loss. This module holds
//! the engine-agnostic half of that story:
//!
//! * [`RecoverySnapshot`] — the CRC-framed per-rank epoch shard codec. A
//!   shard carries one process's chare-state blobs plus an opaque driver
//!   `meta` blob (counters, intervention state, the curve so far — the
//!   driver decides). The snapshot also records how many messages were
//!   still in flight in aggregation/TRAM lanes when it was taken; the
//!   coordinated barrier guarantees that number is zero, and `decode`
//!   re-checks it so a snapshot taken outside a quiescent point can never
//!   be replayed.
//! * [`EpochStore`] — a directory of epoch shards with torn-write-safe
//!   commits (temp file + fsync + atomic rename) and a *commit rule*: an
//!   epoch is committed iff the shards of **all** ranks exist and
//!   CRC-validate. Recovery resumes from the highest committed epoch; the
//!   last `keep` committed epochs are retained, older ones pruned.
//! * [`Backoff`] — deterministic jittered exponential backoff, shared by
//!   the launcher's connect/accept retries and the recovery driver's
//!   respawn loop.
//!
//! The driver half (who takes snapshots, when, and how state is rebuilt)
//! lives in `episim-core::resilient`; the failure detector lives in
//! [`crate::net::comm`]. This file is in simlint R3 scope: a corrupt or
//! missing shard must surface as a typed [`RecoveryError`], never a panic.

use crate::faults::FaultRng;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8; 4] = b"EPRC";
const VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected). Bitwise — snapshot shards are tens of
/// kilobytes, so a lookup table would be tuning noise.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a snapshot or epoch could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Wrong magic bytes — not a recovery shard.
    BadMagic,
    /// Unsupported shard version.
    BadVersion(u32),
    /// Buffer ended early.
    Truncated,
    /// CRC trailer mismatch (torn or corrupted file).
    BadCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The snapshot was taken while messages were still in flight — it is
    /// not a consistent cut and must not be replayed.
    NotQuiescent(u64),
    /// An epoch is missing one rank's shard (commit rule violated).
    MissingShard {
        /// Epoch index.
        epoch: u64,
        /// The rank whose shard is absent or invalid.
        rank: u32,
    },
    /// A shard's header disagrees with the epoch being loaded.
    ShardMismatch(String),
    /// Filesystem failure (message carries the `io::Error` text).
    Io(String),
    /// Recovery retries exhausted; the job is declared failed.
    Exhausted {
        /// Attempts made (initial run + respawns).
        attempts: u32,
        /// The final failure, as reported by the transport.
        last: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::BadMagic => write!(f, "not an EPRC recovery shard"),
            RecoveryError::BadVersion(v) => write!(f, "unsupported recovery shard version {v}"),
            RecoveryError::Truncated => write!(f, "recovery shard truncated"),
            RecoveryError::BadCrc { stored, computed } => write!(
                f,
                "recovery shard CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            RecoveryError::NotQuiescent(n) => {
                write!(f, "snapshot taken with {n} messages still in flight")
            }
            RecoveryError::MissingShard { epoch, rank } => {
                write!(f, "epoch {epoch} is missing rank {rank}'s shard")
            }
            RecoveryError::ShardMismatch(why) => write!(f, "shard header mismatch: {why}"),
            RecoveryError::Io(e) => write!(f, "recovery store I/O: {e}"),
            RecoveryError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "recovery exhausted after {attempts} attempts; last failure: {last}"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e.to_string())
    }
}

/// One rank's contribution to a coordinated checkpoint epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Epoch index (0-based count of committed checkpoints).
    pub epoch: u64,
    /// The first runtime phase to run after resuming from this epoch.
    pub next_phase: u64,
    /// The rank that took this shard.
    pub rank: u32,
    /// Total ranks participating in the epoch (the commit rule's quorum).
    pub n_ranks: u32,
    /// Messages still buffered in aggregation/TRAM lanes when the snapshot
    /// was taken. Must be zero — the barrier runs at phase quiescence.
    pub in_flight: u64,
    /// Opaque driver blob: global counters, intervention state, the curve
    /// so far. Identical across ranks by SPMD lockstep.
    pub meta: Vec<u8>,
    /// Per-chare state blobs `(chare id, bytes)` for chares owned by
    /// `rank`, in ascending id order.
    pub chares: Vec<(u32, Vec<u8>)>,
}

/// Length-guarded read helper: `Buf` getters panic when short, so every
/// read goes through this first.
fn need(buf: &&[u8], n: usize) -> Result<(), RecoveryError> {
    if buf.remaining() < n {
        Err(RecoveryError::Truncated)
    } else {
        Ok(())
    }
}

impl RecoverySnapshot {
    /// Serialize with the CRC-32 trailer.
    pub fn encode(&self) -> Bytes {
        let body: usize =
            self.meta.len() + self.chares.iter().map(|(_, b)| b.len() + 8).sum::<usize>();
        let mut buf = BytesMut::with_capacity(64 + body);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.next_phase);
        buf.put_u32_le(self.rank);
        buf.put_u32_le(self.n_ranks);
        buf.put_u64_le(self.in_flight);
        buf.put_u32_le(self.meta.len() as u32);
        buf.put_slice(&self.meta);
        buf.put_u32_le(self.chares.len() as u32);
        for (id, bytes) in &self.chares {
            buf.put_u32_le(*id);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        let crc = crc32(buf.as_slice());
        buf.put_u32_le(crc);
        buf.freeze()
    }

    /// Deserialize, verifying structure, the CRC trailer, and quiescence.
    pub fn decode(data: &[u8]) -> Result<RecoverySnapshot, RecoveryError> {
        let mut buf = data;
        need(&buf, 8)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(RecoveryError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(RecoveryError::BadVersion(version));
        }
        need(&buf, 8 + 8 + 4 + 4 + 8 + 4)?;
        let epoch = buf.get_u64_le();
        let next_phase = buf.get_u64_le();
        let rank = buf.get_u32_le();
        let n_ranks = buf.get_u32_le();
        let in_flight = buf.get_u64_le();
        let meta_len = buf.get_u32_le() as usize;
        need(&buf, meta_len + 4)?;
        let (meta_bytes, rest) = buf.split_at(meta_len);
        let meta = meta_bytes.to_vec();
        buf = rest;
        let n_chares = buf.get_u32_le() as usize;
        let mut chares = Vec::with_capacity(n_chares.min(1 << 16));
        for _ in 0..n_chares {
            need(&buf, 8)?;
            let id = buf.get_u32_le();
            let len = buf.get_u32_le() as usize;
            need(&buf, len)?;
            let (blob, rest) = buf.split_at(len);
            chares.push((id, blob.to_vec()));
            buf = rest;
        }
        need(&buf, 4)?;
        let stored = buf.get_u32_le();
        let payload_len = data.len() - buf.remaining() - 4;
        let payload = data.get(..payload_len).ok_or(RecoveryError::Truncated)?;
        let computed = crc32(payload);
        if stored != computed {
            return Err(RecoveryError::BadCrc { stored, computed });
        }
        if in_flight != 0 {
            return Err(RecoveryError::NotQuiescent(in_flight));
        }
        Ok(RecoverySnapshot {
            epoch,
            next_phase,
            rank,
            n_ranks,
            in_flight,
            meta,
            chares,
        })
    }
}

/// On-disk store of coordinated checkpoint epochs.
///
/// Layout: `<dir>/epoch-<E>.rank-<R>.rsnap`, one shard per rank per epoch.
/// Shard writes are torn-write-safe (temp + fsync + rename); the commit
/// rule is structural — an epoch exists iff every rank's shard decodes.
#[derive(Debug, Clone)]
pub struct EpochStore {
    dir: PathBuf,
    keep: u32,
}

impl EpochStore {
    /// Open (creating the directory if needed). `keep` bounds how many
    /// committed epochs [`EpochStore::retain`] preserves; 0 means 1.
    pub fn open(dir: &Path, keep: u32) -> Result<EpochStore, RecoveryError> {
        fs::create_dir_all(dir)?;
        Ok(EpochStore {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, epoch: u64, rank: u32) -> PathBuf {
        self.dir
            .join(format!("epoch-{epoch:08}.rank-{rank:04}.rsnap"))
    }

    /// Durably write one rank's shard: temp file in the same directory,
    /// fsync, atomic rename over the final name, then best-effort
    /// directory fsync so the rename itself survives power loss.
    pub fn commit_shard(&self, snap: &RecoverySnapshot) -> Result<(), RecoveryError> {
        if snap.in_flight != 0 {
            return Err(RecoveryError::NotQuiescent(snap.in_flight));
        }
        let finale = self.shard_path(snap.epoch, snap.rank);
        let tmp = self.dir.join(format!(
            ".epoch-{:08}.rank-{:04}.tmp",
            snap.epoch, snap.rank
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&snap.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &finale)?;
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Load one rank's shard of an epoch.
    pub fn load_shard(&self, epoch: u64, rank: u32) -> Result<RecoverySnapshot, RecoveryError> {
        let path = self.shard_path(epoch, rank);
        let data = fs::read(&path).map_err(|_| RecoveryError::MissingShard { epoch, rank })?;
        let snap = RecoverySnapshot::decode(&data)?;
        if snap.epoch != epoch || snap.rank != rank {
            return Err(RecoveryError::ShardMismatch(format!(
                "file {} claims epoch {} rank {}",
                path.display(),
                snap.epoch,
                snap.rank
            )));
        }
        Ok(snap)
    }

    /// Load a full committed epoch: every rank's shard, ascending rank.
    pub fn load_epoch(
        &self,
        epoch: u64,
        n_ranks: u32,
    ) -> Result<Vec<RecoverySnapshot>, RecoveryError> {
        let mut shards = Vec::with_capacity(n_ranks as usize);
        for rank in 0..n_ranks {
            let snap = self.load_shard(epoch, rank)?;
            if snap.n_ranks != n_ranks {
                return Err(RecoveryError::ShardMismatch(format!(
                    "epoch {epoch} rank {rank} was taken with {} ranks, expected {n_ranks}",
                    snap.n_ranks
                )));
            }
            shards.push(snap);
        }
        Ok(shards)
    }

    /// Epochs for which at least one shard file exists, ascending.
    fn epochs_on_disk(&self) -> Vec<u64> {
        let mut epochs = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(_) => return epochs,
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(e) = parse_epoch(&name) {
                if !epochs.contains(&e) {
                    epochs.push(e);
                }
            }
        }
        epochs.sort_unstable();
        epochs
    }

    /// The commit rule: the highest epoch whose shards for ranks
    /// `0..n_ranks` all exist and CRC-validate. Torn or corrupt shards
    /// simply disqualify their epoch — recovery falls back to the previous
    /// one.
    pub fn latest_committed(&self, n_ranks: u32) -> Option<u64> {
        self.epochs_on_disk()
            .into_iter()
            .rev()
            .find(|&e| self.load_epoch(e, n_ranks).is_ok())
    }

    /// Prune epochs older than the newest `keep` committed ones
    /// (best-effort; I/O errors are ignored — pruning is hygiene, not
    /// correctness).
    pub fn retain(&self, n_ranks: u32) {
        let committed: Vec<u64> = self
            .epochs_on_disk()
            .into_iter()
            .filter(|&e| self.load_epoch(e, n_ranks).is_ok())
            .collect();
        if committed.len() <= self.keep as usize {
            return;
        }
        let cutoff = committed[committed.len() - self.keep as usize];
        for e in self.epochs_on_disk() {
            if e < cutoff {
                for rank in 0..n_ranks {
                    let _ = fs::remove_file(self.shard_path(e, rank));
                }
            }
        }
    }
}

/// Parse `epoch-<E>.rank-<R>.rsnap`, returning the epoch.
fn parse_epoch(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("epoch-")?;
    if !rest.ends_with(".rsnap") {
        return None;
    }
    let (digits, _) = rest.split_once('.')?;
    digits.parse().ok()
}

/// Deterministic jittered exponential backoff: attempt `k` sleeps
/// `base · 2^k`, scaled by a uniform jitter in `[0.5, 1.5)` drawn from a
/// seeded [`FaultRng`], capped at `cap`. Jitter decorrelates retry storms
/// (every worker reconnecting in lockstep after a root hiccup) without
/// introducing wall-clock-derived nondeterminism — the schedule is a pure
/// function of `(seed, attempt)`.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: FaultRng,
}

impl Backoff {
    /// `base_ms` for attempt 0, doubling per attempt, never above `cap_ms`.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base: Duration::from_millis(base_ms.max(1)),
            cap: Duration::from_millis(cap_ms.max(1)),
            rng: FaultRng::new(seed ^ 0xb0ff_b0ff_b0ff_b0ff),
        }
    }

    /// The delay before retry number `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let jitter_pm = 500 + self.rng.below(1000); // 0.5x..1.5x in per-mille
        let jittered = exp.saturating_mul(jitter_pm as u32) / 1000;
        jittered.min(self.cap)
    }

    /// Sleep for [`Backoff::delay`] and return the duration slept.
    pub fn sleep(&mut self, attempt: u32) -> Duration {
        let d = self.delay(attempt);
        std::thread::sleep(d);
        d
    }
}

/// Peer liveness as seen by the failure detector (DESIGN.md §10). The
/// detector runs on the comm thread: every inbound frame from a peer
/// refreshes its liveness; heartbeats fill the gaps when the phase is
/// quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Frames (or heartbeat acks) arriving within the timeout.
    Alive,
    /// Connection closed or reset — the process is gone.
    Crashed,
    /// Socket open but silent past the heartbeat timeout: the process is
    /// alive but not scheduling its comm thread (SIGSTOP, livelock, GC
    /// pause). Indistinguishable from a network partition on loopback;
    /// over a real fabric a partition also surfaces as send-path timeouts,
    /// reported as [`PeerHealth::Partitioned`].
    Stalled,
    /// Send path reports the peer unreachable while the connection is
    /// nominally open (route loss rather than process death).
    Partitioned,
}

impl fmt::Display for PeerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerHealth::Alive => write!(f, "alive"),
            PeerHealth::Crashed => write!(f, "crashed"),
            PeerHealth::Stalled => write!(f, "stalled"),
            PeerHealth::Partitioned => write!(f, "partitioned"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, rank: u32, n_ranks: u32) -> RecoverySnapshot {
        RecoverySnapshot {
            epoch,
            next_phase: epoch * 6 + 1,
            rank,
            n_ranks,
            in_flight: 0,
            meta: vec![9, 8, 7, rank as u8],
            chares: vec![(rank * 2, vec![1, 2, 3]), (rank * 2 + 1, vec![])],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("episim-rsnap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = snap(3, 1, 4);
        let decoded = RecoverySnapshot::decode(&s.encode()).expect("round trip");
        assert_eq!(decoded, s);
    }

    #[test]
    fn snapshot_rejects_corruption_and_truncation() {
        let data = snap(0, 0, 1).encode();
        // Every strict prefix is Truncated or structurally invalid.
        for cut in [0, 4, 11, data.len() / 2, data.len() - 1] {
            assert!(
                RecoverySnapshot::decode(&data[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        // A body bit-flip is caught by the CRC.
        let mut bad = data.to_vec();
        let mid = data.len() / 2;
        bad[mid] ^= 0x40;
        assert!(matches!(
            RecoverySnapshot::decode(&bad),
            Err(RecoveryError::BadCrc { .. })
        ));
        // Wrong magic and wrong version are typed.
        let mut m = data.to_vec();
        m[0] = b'X';
        assert_eq!(
            RecoverySnapshot::decode(&m).err(),
            Some(RecoveryError::BadMagic)
        );
        let mut v = data.to_vec();
        v[4] = 99;
        assert!(matches!(
            RecoverySnapshot::decode(&v),
            Err(RecoveryError::BadVersion(99))
        ));
    }

    #[test]
    fn non_quiescent_snapshot_rejected() {
        let mut s = snap(0, 0, 1);
        s.in_flight = 3;
        let data = s.encode();
        assert_eq!(
            RecoverySnapshot::decode(&data).err(),
            Some(RecoveryError::NotQuiescent(3))
        );
        let store = EpochStore::open(&tmpdir("quiesce"), 2).unwrap();
        assert!(store.commit_shard(&s).is_err());
    }

    #[test]
    fn commit_rule_requires_every_rank() {
        let store = EpochStore::open(&tmpdir("commit"), 2).unwrap();
        store.commit_shard(&snap(0, 0, 2)).unwrap();
        store.commit_shard(&snap(0, 1, 2)).unwrap();
        store.commit_shard(&snap(1, 0, 2)).unwrap();
        // Epoch 1 is missing rank 1: not committed.
        assert_eq!(store.latest_committed(2), Some(0));
        store.commit_shard(&snap(1, 1, 2)).unwrap();
        assert_eq!(store.latest_committed(2), Some(1));
        let shards = store.load_epoch(1, 2).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[1].rank, 1);
    }

    #[test]
    fn torn_shard_disqualifies_its_epoch() {
        let dir = tmpdir("torn");
        let store = EpochStore::open(&dir, 2).unwrap();
        store.commit_shard(&snap(0, 0, 1)).unwrap();
        store.commit_shard(&snap(1, 0, 1)).unwrap();
        // Chop the epoch-1 shard mid-file, as a crash during write would.
        let path = dir.join("epoch-00000001.rank-0000.rsnap");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 7]).unwrap();
        assert_eq!(store.latest_committed(1), Some(0));
        assert!(matches!(
            store.load_epoch(1, 1),
            Err(RecoveryError::Truncated)
        ));
    }

    #[test]
    fn retain_prunes_old_epochs() {
        let store = EpochStore::open(&tmpdir("retain"), 2).unwrap();
        for e in 0..5 {
            store.commit_shard(&snap(e, 0, 1)).unwrap();
        }
        store.retain(1);
        assert_eq!(store.latest_committed(1), Some(4));
        assert!(store.load_epoch(2, 1).is_err(), "epoch 2 pruned");
        assert!(store.load_epoch(3, 1).is_ok(), "keep=2 preserves epoch 3");
    }

    #[test]
    fn backoff_grows_jitters_and_caps() {
        let mut b = Backoff::new(10, 400, 7);
        let d0 = b.delay(0);
        let d3 = b.delay(3);
        assert!(d0 >= Duration::from_millis(5) && d0 < Duration::from_millis(15));
        assert!(d3 >= Duration::from_millis(40) && d3 < Duration::from_millis(121));
        assert_eq!(b.delay(16), Duration::from_millis(400), "capped");
        // Deterministic: same seed, same schedule.
        let seq = |seed| {
            let mut b = Backoff::new(10, 400, seed);
            (0..6).map(|k| b.delay(k)).collect::<Vec<_>>()
        };
        assert_eq!(seq(42), seq(42));
        assert_ne!(seq(42), seq(43), "jitter depends on the seed");
    }

    #[test]
    fn epoch_filename_parse() {
        assert_eq!(parse_epoch("epoch-00000012.rank-0003.rsnap"), Some(12));
        assert_eq!(parse_epoch(".epoch-00000012.rank-0003.tmp"), None);
        assert_eq!(parse_epoch("garbage"), None);
    }
}
