//! Same-host shared-memory transport: lock-free SPSC byte rings.
//!
//! The TCP mesh pays two syscalls and a full kernel round-trip per flush;
//! `BENCH_netpath.json` measured that at ~27.5 µs/msg inter-process versus
//! ~94 ns intra-process. This module closes most of that gap for workers
//! that share a host: one `memfd` region holds an n×n matrix of
//! single-producer/single-consumer byte rings, the fd is inherited across
//! the SPMD re-exec (`launch.rs` passes its number in an env var), and
//! BATCH frames move compute-thread → ring → compute-thread with no comm
//! thread and no kernel in the steady state. Control traffic (handshakes,
//! phase barriers, completion detection, stats, shutdown, liveness) stays
//! on TCP — peer death is still detected as a socket EOF, so the worker
//! exit-code contract (16/17) is untouched.
//!
//! Layout (normative; DESIGN.md §8 carries the diagram):
//!
//! ```text
//! offset 0      header page: magic u64 | version u32 | n_procs u32
//!               | ring_bytes u64 | invocation u64
//! offset 4096   doorbells: one 64-byte cell per rank
//!               (seq: AtomicU32 @0, waiters: AtomicU32 @4)
//! offset 8192   ring slots, row-major by (src, dst), each:
//!               head: AtomicU64 @0    -- consumer cursor, consumer-owned
//!               tail: AtomicU64 @64   -- producer cursor, producer-owned
//!               data: ring_bytes      -- power-of-two byte ring @128
//! ```
//!
//! Ownership and ordering rules:
//!
//! * Slot `(src, dst)` is written only by rank `src` and read only by rank
//!   `dst` — SPSC by construction, no CAS anywhere.
//! * Cursors are monotonic u64 byte counts; the ring index is
//!   `cursor & (ring_bytes - 1)`. They never wrap in any realistic run
//!   (2^64 bytes).
//! * Producer: load `head` (Acquire), copy bytes in, store `tail`
//!   (Release). Consumer: load `tail` (Acquire), copy bytes out, store
//!   `head` (Release). The Release/Acquire pair on `tail` publishes the
//!   data; the one on `head` publishes the free space.
//! * A frame is pushed atomically or not at all ([`RingProducer::try_push`]),
//!   so a reader can never observe a torn frame boundary — partially
//!   *read* frames are reassembled by [`crate::net::transport::FrameBuf`],
//!   exactly as on TCP.
//!
//! Doorbells let an idle consumer park without busy-waiting while staying
//! off the message path: a producer bumps the destination rank's `seq` and
//! issues `FUTEX_WAKE` only if `waiters` is set; the consumer re-checks
//! `seq` *after* advertising itself in `waiters`, so a wake between its
//! last poll and the `futex_wait` is never lost (the kernel rejects the
//! wait with `EAGAIN` when `seq` already moved).

use std::io::{self, Read};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// First u64 of the header: `"EPNTSHM1"` little-endian.
pub const SHM_MAGIC: u64 = u64::from_le_bytes(*b"EPNTSHM1");
/// Region layout version; a mismatch is a setup error, never negotiated.
pub const SHM_VERSION: u32 = 1;

const HEADER_BYTES: u64 = 4096;
const DOORBELL_OFF: u64 = 4096;
const DOORBELL_STRIDE: u64 = 64;
const SLOTS_OFF: u64 = 8192;
const SLOT_HDR: u64 = 128;
/// One doorbell page bounds the mesh size; far above any same-host run.
const MAX_PROCS: u32 = 64;
/// Smallest ring we allow — tests shrink to this to exercise wrap-around.
pub const MIN_RING_BYTES: u32 = 4096;
/// Largest ring we allow.
pub const MAX_RING_BYTES: u32 = 1 << 30;

mod ffi {
    use std::os::raw::{c_int, c_long, c_uint, c_void};

    #[repr(C)]
    pub struct Timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    extern "C" {
        pub fn memfd_create(name: *const u8, flags: c_uint) -> c_int;
        pub fn ftruncate(fd: c_int, length: i64) -> c_int;
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn syscall(num: c_long, ...) -> c_long;
    }

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
    pub const F_DUPFD: c_int = 0;
    pub const F_SETFD: c_int = 2;
    pub const FD_CLOEXEC: c_int = 1;

    #[cfg(target_arch = "x86_64")]
    pub const SYS_FUTEX: c_long = 202;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_FUTEX: c_long = 98;

    // The futex ops carry NO private flag: the waiter and the waker live
    // in different processes sharing the mapping.
    pub const FUTEX_WAIT: c_int = 0;
    pub const FUTEX_WAKE: c_int = 1;
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn futex_wait(addr: *const AtomicU32, expected: u32, timeout: Duration) {
    let ts = ffi::Timespec {
        tv_sec: timeout.as_secs() as i64,
        tv_nsec: i64::from(timeout.subsec_nanos()),
    };
    // EAGAIN (seq moved), EINTR, and ETIMEDOUT are all benign: the caller
    // re-polls its rings regardless of why the wait ended.
    // SAFETY: raw futex syscall on a live AtomicU32 inside the shared mapping; the kernel treats the address opaquely and the Timespec outlives the call.
    unsafe {
        ffi::syscall(
            ffi::SYS_FUTEX,
            addr as *const u32,
            ffi::FUTEX_WAIT,
            expected,
            &ts as *const ffi::Timespec,
            0usize,
            0u32,
        );
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn futex_wake(addr: *const AtomicU32) {
    // SAFETY: raw futex syscall on a live AtomicU32 inside the shared mapping; wake takes no userspace buffers.
    unsafe {
        ffi::syscall(
            ffi::SYS_FUTEX,
            addr as *const u32,
            ffi::FUTEX_WAKE,
            i32::MAX,
            0usize,
            0usize,
            0u32,
        );
    }
}

// Portability stub: without a known futex syscall number the doorbell
// degrades to a bounded sleep — correct, just not as prompt.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn futex_wait(_addr: *const AtomicU32, _expected: u32, timeout: Duration) {
    std::thread::sleep(timeout.min(Duration::from_micros(200)));
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn futex_wake(_addr: *const AtomicU32) {}

fn os_err(context: &str) -> io::Error {
    let e = io::Error::last_os_error();
    io::Error::new(e.kind(), format!("{context}: {e}"))
}

/// The mapped `memfd` region shared by every process of one net run.
///
/// The root creates it before spawning workers (the fd, created without
/// `FD_CLOEXEC`, survives the re-exec); workers attach with
/// [`ShmRegion::from_fd`] and validate the header — including the
/// invocation stamp, so a stale fd number from an earlier run in the same
/// test binary is rejected instead of silently cross-wiring two meshes.
#[derive(Debug)]
pub struct ShmRegion {
    base: *mut u8,
    len: usize,
    fd: i32,
    n_procs: u32,
    ring_bytes: u32,
    invocation: u64,
}

// SAFETY: the raw pointer targets a MAP_SHARED region whose concurrent access is
// mediated entirely by the atomics embedded in it (SPSC cursor protocol
// above), so the handle itself may move and be shared across threads.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

impl ShmRegion {
    fn region_len(n_procs: u32, ring_bytes: u32) -> usize {
        let slots = u64::from(n_procs) * u64::from(n_procs);
        (SLOTS_OFF + slots * (SLOT_HDR + u64::from(ring_bytes))) as usize
    }

    fn validate_shape(n_procs: u32, ring_bytes: u32) -> io::Result<()> {
        if n_procs == 0 || n_procs > MAX_PROCS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shm mesh supports 1..={MAX_PROCS} processes, got {n_procs}"),
            ));
        }
        if !ring_bytes.is_power_of_two() || !(MIN_RING_BYTES..=MAX_RING_BYTES).contains(&ring_bytes)
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("ring_bytes must be a power of two in [{MIN_RING_BYTES}, {MAX_RING_BYTES}], got {ring_bytes}"),
            ));
        }
        Ok(())
    }

    /// Create and initialise a region for `n_procs` ranks (root side).
    /// `ring_bytes` is rounded up to a power of two and clamped.
    pub fn create(n_procs: u32, ring_bytes: u32, invocation: u64) -> io::Result<Arc<ShmRegion>> {
        let ring_bytes = ring_bytes
            .clamp(MIN_RING_BYTES, MAX_RING_BYTES)
            .next_power_of_two();
        Self::validate_shape(n_procs, ring_bytes)?;
        let len = Self::region_len(n_procs, ring_bytes);
        // memfd flags deliberately 0 (not MFD_CLOEXEC): workers inherit
        // this exact fd number across the SPMD re-exec.
        // SAFETY: memfd_create with a static NUL-terminated name; the returned fd is checked before use.
        let fd = unsafe { ffi::memfd_create(c"episim-ring".as_ptr().cast(), 0) };
        if fd < 0 {
            return Err(os_err("memfd_create"));
        }
        // SAFETY: fd is the freshly created memfd owned by this function.
        if unsafe { ffi::ftruncate(fd, len as i64) } != 0 {
            let e = os_err("ftruncate(shm region)");
            // SAFETY: error path owns fd and closes it exactly once.
            unsafe { ffi::close(fd) };
            return Err(e);
        }
        let base = Self::map(fd, len)?;
        let region = ShmRegion {
            base,
            len,
            fd,
            n_procs,
            ring_bytes,
            invocation,
        };
        // Freshly ftruncated memfd pages are zero, so cursors, doorbells
        // and ring data all start in their initial state; only the header
        // needs explicit writes.
        region.header_u64(0).store(SHM_MAGIC, Ordering::Relaxed);
        region.header_u32(8).store(SHM_VERSION, Ordering::Relaxed);
        region.header_u32(12).store(n_procs, Ordering::Relaxed);
        region
            .header_u64(16)
            .store(u64::from(ring_bytes), Ordering::Relaxed);
        // Publish the invocation last with Release: a child that can read
        // it is guaranteed to see the whole header.
        region.header_u64(24).store(invocation, Ordering::Release);
        Ok(Arc::new(region))
    }

    /// Heap-backed region: identical layout and cursor protocol, no
    /// memfd/mmap/ftruncate syscalls. This is the backing the unit tests
    /// (and the Miri job in CI) use; it cannot be shared across
    /// processes, so [`fd`](Self::fd) reports the `-1` sentinel and
    /// [`from_fd`](Self::from_fd)/[`set_cloexec`](Self::set_cloexec)/
    /// [`dup_fd`](Self::dup_fd) must not be called on it.
    pub fn create_heap(
        n_procs: u32,
        ring_bytes: u32,
        invocation: u64,
    ) -> io::Result<Arc<ShmRegion>> {
        let ring_bytes = ring_bytes
            .clamp(MIN_RING_BYTES, MAX_RING_BYTES)
            .next_power_of_two();
        Self::validate_shape(n_procs, ring_bytes)?;
        // Round up to whole u64 words: the box gives the 8-byte alignment
        // the embedded AtomicU64 header fields need.
        let words = Self::region_len(n_procs, ring_bytes).div_ceil(8);
        let buf: Box<[u64]> = vec![0u64; words].into_boxed_slice();
        // SAFETY: the box is leaked here and reconstructed exactly once, in
        // the `fd < 0` branch of Drop, from the same base/len pair.
        let base = Box::into_raw(buf) as *mut u64 as *mut u8;
        let region = ShmRegion {
            base,
            len: words * 8,
            fd: -1,
            n_procs,
            ring_bytes,
            invocation,
        };
        region.header_u64(0).store(SHM_MAGIC, Ordering::Relaxed);
        region.header_u32(8).store(SHM_VERSION, Ordering::Relaxed);
        region.header_u32(12).store(n_procs, Ordering::Relaxed);
        region
            .header_u64(16)
            .store(u64::from(ring_bytes), Ordering::Relaxed);
        region.header_u64(24).store(invocation, Ordering::Release);
        Ok(Arc::new(region))
    }

    /// Attach to an inherited fd (worker side) and validate the header
    /// against this run's invocation.
    pub fn from_fd(fd: i32, expect_invocation: u64) -> io::Result<Arc<ShmRegion>> {
        // Two-phase map: one page to learn the shape, then the full run.
        let peek = Self::map(fd, HEADER_BYTES as usize)?;
        // SAFETY: `peek` is a fresh MAP_SHARED mapping at least HEADER_BYTES long; every offset dereferenced here is an aligned header field inside it, and the munmap releases exactly that mapping.
        let magic = unsafe { (*(peek as *const AtomicU64)).load(Ordering::Acquire) };
        let version = unsafe { (*(peek.add(8) as *const AtomicU32)).load(Ordering::Relaxed) };
        let n_procs = unsafe { (*(peek.add(12) as *const AtomicU32)).load(Ordering::Relaxed) };
        let ring_bytes = unsafe { (*(peek.add(16) as *const AtomicU64)).load(Ordering::Relaxed) };
        let invocation = unsafe { (*(peek.add(24) as *const AtomicU64)).load(Ordering::Relaxed) };
        unsafe { ffi::munmap(peek.cast(), HEADER_BYTES as usize) };
        if magic != SHM_MAGIC || version != SHM_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shm header mismatch (magic {magic:#x}, version {version})"),
            ));
        }
        if invocation != expect_invocation {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("stale shm region: invocation {invocation}, expected {expect_invocation}"),
            ));
        }
        let ring_bytes = u32::try_from(ring_bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "shm ring_bytes overflow"))?;
        Self::validate_shape(n_procs, ring_bytes)?;
        let len = Self::region_len(n_procs, ring_bytes);
        let base = Self::map(fd, len)?;
        Ok(Arc::new(ShmRegion {
            base,
            len,
            fd,
            n_procs,
            ring_bytes,
            invocation,
        }))
    }

    fn map(fd: i32, len: usize) -> io::Result<*mut u8> {
        // SAFETY: anonymous-address mmap of a caller-validated length over `fd`; the result is checked against MAP_FAILED before anyone dereferences it.
        let base = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                len,
                ffi::PROT_READ | ffi::PROT_WRITE,
                ffi::MAP_SHARED,
                fd,
                0,
            )
        };
        if base == ffi::MAP_FAILED {
            return Err(os_err("mmap(shm region)"));
        }
        Ok(base.cast())
    }

    /// The region's fd — `launch.rs` exports its number to workers.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Mark the fd close-on-exec. The root calls this after every worker
    /// has been spawned so unrelated future execs can't leak the region.
    pub fn set_cloexec(&self) -> io::Result<()> {
        // SAFETY: fcntl on the region's own open fd; no memory is passed.
        if unsafe { ffi::fcntl(self.fd, ffi::F_SETFD, ffi::FD_CLOEXEC) } != 0 {
            return Err(os_err("fcntl(FD_CLOEXEC)"));
        }
        Ok(())
    }

    /// Duplicate the region's fd (lowest free number). Used by tests to
    /// attach a second mapping without double-closing on drop.
    pub fn dup_fd(&self) -> io::Result<i32> {
        // SAFETY: fcntl dup of the region's own open fd; no memory is passed.
        let fd = unsafe { ffi::fcntl(self.fd, ffi::F_DUPFD, 0) };
        if fd < 0 {
            return Err(os_err("fcntl(F_DUPFD)"));
        }
        Ok(fd)
    }

    /// Ranks in the mesh (root included).
    pub fn n_procs(&self) -> u32 {
        self.n_procs
    }

    /// Data capacity of each ring in bytes (power of two).
    pub fn ring_bytes(&self) -> u32 {
        self.ring_bytes
    }

    /// The invocation the region was stamped with.
    pub fn invocation(&self) -> u64 {
        self.invocation
    }

    fn header_u64(&self, off: usize) -> &AtomicU64 {
        // SAFETY: header offsets are compile-time constants, 8-aligned, inside the
        // first page of a mapping whose length is validated at creation.
        unsafe { &*(self.base.add(off) as *const AtomicU64) }
    }

    fn header_u32(&self, off: usize) -> &AtomicU32 {
        // SAFETY: same argument as `header_u64`: a constant, 4-aligned offset inside the validated header page.
        unsafe { &*(self.base.add(off) as *const AtomicU32) }
    }

    fn check_rank(&self, rank: u32, what: &str) -> io::Result<()> {
        if rank >= self.n_procs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{what} rank {rank} out of range (n_procs {})", self.n_procs),
            ));
        }
        Ok(())
    }

    fn slot_off(&self, src: u32, dst: u32) -> u64 {
        let idx = u64::from(src) * u64::from(self.n_procs) + u64::from(dst);
        SLOTS_OFF + idx * (SLOT_HDR + u64::from(self.ring_bytes))
    }
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        if self.fd < 0 {
            // SAFETY: the -1 sentinel marks a heap region; base/len are
            // exactly the Box<[u64]> leaked in `create_heap`, freed once.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                    self.base.cast::<u64>(),
                    self.len / 8,
                )));
            }
            return;
        }
        // SAFETY: base/len describe exactly the mapping made in `map` and fd is owned by this region; both are released exactly once, here.
        unsafe {
            ffi::munmap(self.base.cast(), self.len);
            ffi::close(self.fd);
        }
    }
}

/// The producer half of slot `(src, dst)`. At most one per slot per mesh —
/// the engine derives `src` from its own rank, which enforces it.
#[derive(Debug)]
pub struct RingProducer {
    _region: Arc<ShmRegion>,
    head: *const AtomicU64,
    tail: *const AtomicU64,
    data: *mut u8,
    cap: usize,
}

// SAFETY: the cursor pointers target atomics inside the shared mapping kept alive by `_region`; attach-time rank checks enforce the single-producer discipline, so the handle may move to another thread.
unsafe impl Send for RingProducer {}

impl RingProducer {
    /// Attach to slot `(src, dst)`.
    pub fn attach(region: Arc<ShmRegion>, src: u32, dst: u32) -> io::Result<RingProducer> {
        region.check_rank(src, "producer src")?;
        region.check_rank(dst, "producer dst")?;
        let off = region.slot_off(src, dst) as usize;
        // SAFETY: slot_off is bounded by region_len for validated ranks, so all three offsets stay inside the mapping; the Arc keeps it alive.
        let (head, tail, data) = unsafe {
            (
                region.base.add(off) as *const AtomicU64,
                region.base.add(off + 64) as *const AtomicU64,
                region.base.add(off + SLOT_HDR as usize),
            )
        };
        Ok(RingProducer {
            cap: region.ring_bytes as usize,
            _region: region,
            head,
            tail,
            data,
        })
    }

    /// Largest frame this ring accepts (header + body). The engine routes
    /// anything bigger over TCP — oversize frames are so rare that the
    /// occasional reorder against in-ring traffic is indistinguishable
    /// from normal network reordering, which the phase protocol already
    /// tolerates.
    pub fn max_frame(&self) -> usize {
        self.cap / 2
    }

    /// Free bytes right now (racy by nature; only grows concurrently).
    pub fn free(&self) -> usize {
        // SAFETY: head/tail point at live atomics inside the mapping owned by `_region`.
        let head = unsafe { &*self.head }.load(Ordering::Acquire);
        let tail = unsafe { &*self.tail }.load(Ordering::Relaxed);
        self.cap - (tail.wrapping_sub(head)) as usize
    }

    /// Push one whole frame, or nothing: returns `false` when the ring
    /// lacks space (backpressure — the caller drains its own inbound rings
    /// and retries, which is what breaks mutual-full deadlocks).
    #[simlint_macros::hot_path]
    pub fn try_push(&self, kind: u8, payload: &[u8]) -> bool {
        let need = 5 + payload.len();
        if need > self.max_frame() {
            return false;
        }
        // SAFETY: head/tail point at live atomics inside the mapping owned by `_region`.
        let head = unsafe { &*self.head }.load(Ordering::Acquire);
        let tail = unsafe { &*self.tail }.load(Ordering::Relaxed);
        let free = self.cap - tail.wrapping_sub(head) as usize;
        if need > free {
            return false;
        }
        let len = ((payload.len() + 1) as u32).to_le_bytes();
        self.copy_in(tail, &len);
        self.copy_in(tail + 4, std::slice::from_ref(&kind));
        self.copy_in(tail + 5, payload);
        // SAFETY: tail is a live atomic inside the mapping; the Release store
        // publishes the copied bytes together with the new cursor.
        unsafe { &*self.tail }.store(tail + need as u64, Ordering::Release);
        true
    }

    /// Wrap-aware copy into the ring at logical byte offset `at`.
    #[inline]
    fn copy_in(&self, at: u64, src: &[u8]) {
        let mask = self.cap - 1;
        let off = at as usize & mask;
        let first = src.len().min(self.cap - off);
        // SAFETY: `off` is masked and `first` clamped to the ring capacity, so both copies stay inside the data area; producer exclusivity makes the writes race-free.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data.add(off), first);
            if first < src.len() {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(first),
                    self.data,
                    src.len() - first,
                );
            }
        }
    }
}

/// The consumer half of slot `(src, dst)`; its [`Read`] impl reports an
/// empty ring as `WouldBlock`, exactly like a non-blocking socket, so
/// [`crate::net::transport::FrameBuf::poll`] works on it unchanged.
#[derive(Debug)]
pub struct RingConsumer {
    _region: Arc<ShmRegion>,
    head: *const AtomicU64,
    tail: *const AtomicU64,
    data: *const u8,
    cap: usize,
}

// SAFETY: the cursor pointers target atomics inside the shared mapping kept alive by `_region`; attach-time rank checks enforce the single-consumer discipline, so the handle may move to another thread.
unsafe impl Send for RingConsumer {}

impl RingConsumer {
    /// Attach to slot `(src, dst)`.
    pub fn attach(region: Arc<ShmRegion>, src: u32, dst: u32) -> io::Result<RingConsumer> {
        region.check_rank(src, "consumer src")?;
        region.check_rank(dst, "consumer dst")?;
        let off = region.slot_off(src, dst) as usize;
        // SAFETY: slot_off is bounded by region_len for validated ranks, so all three offsets stay inside the mapping; the Arc keeps it alive.
        let (head, tail, data) = unsafe {
            (
                region.base.add(off) as *const AtomicU64,
                region.base.add(off + 64) as *const AtomicU64,
                region.base.add(off + SLOT_HDR as usize) as *const u8,
            )
        };
        Ok(RingConsumer {
            cap: region.ring_bytes as usize,
            _region: region,
            head,
            tail,
            data,
        })
    }

    /// Bytes waiting in the ring (the idle check polls this cheaply).
    pub fn pending(&self) -> u64 {
        // SAFETY: head/tail point at live atomics inside the mapping owned by `_region`.
        let tail = unsafe { &*self.tail }.load(Ordering::Acquire);
        let head = unsafe { &*self.head }.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Wrap-aware copy out of the ring at logical byte offset `at`.
    #[inline]
    fn copy_out(&self, at: u64, dst: &mut [u8]) {
        let mask = self.cap - 1;
        let off = at as usize & mask;
        let first = dst.len().min(self.cap - off);
        // SAFETY: `off` is masked and `first` clamped to the ring capacity, so both copies stay inside the data area; the consumer only reads bytes the producer published with Release.
        unsafe {
            std::ptr::copy_nonoverlapping(self.data.add(off), dst.as_mut_ptr(), first);
            if first < dst.len() {
                std::ptr::copy_nonoverlapping(
                    self.data,
                    dst.as_mut_ptr().add(first),
                    dst.len() - first,
                );
            }
        }
    }
}

impl Read for RingConsumer {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: head/tail are live atomics inside the mapping, and the
        // Acquire on tail pairs with the producer's Release: every byte up
        // to tail is visible before we copy.
        let tail = unsafe { &*self.tail }.load(Ordering::Acquire);
        let head = unsafe { &*self.head }.load(Ordering::Relaxed);
        let avail = tail.wrapping_sub(head) as usize;
        if avail == 0 {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let n = avail.min(buf.len());
        if n == 0 {
            return Ok(0);
        }
        self.copy_out(head, &mut buf[..n]);
        // SAFETY: head is a live atomic inside the mapping; the Release
        // store publishes the freed space to the producer.
        unsafe { &*self.head }.store(head + n as u64, Ordering::Release);
        Ok(n)
    }
}

/// A rank's wakeup cell: producers ring it after pushing into any of that
/// rank's inbound rings; the rank's compute thread parks on it when idle.
#[derive(Debug, Clone)]
pub struct Doorbell {
    _region: Arc<ShmRegion>,
    seq: *const AtomicU32,
    waiters: *const AtomicU32,
}

// SAFETY: seq/waiters point at atomics inside the shared mapping kept alive by `_region`; every access below is atomic, so the handle may be shared and cloned across threads.
unsafe impl Send for Doorbell {}
unsafe impl Sync for Doorbell {}

impl Doorbell {
    /// Attach to `rank`'s doorbell.
    pub fn attach(region: Arc<ShmRegion>, rank: u32) -> io::Result<Doorbell> {
        region.check_rank(rank, "doorbell")?;
        let off = (DOORBELL_OFF + u64::from(rank) * DOORBELL_STRIDE) as usize;
        // SAFETY: the doorbell offset is inside the header area for validated ranks; the Arc keeps the mapping alive.
        let (seq, waiters) = unsafe {
            (
                region.base.add(off) as *const AtomicU32,
                region.base.add(off + 4) as *const AtomicU32,
            )
        };
        Ok(Doorbell {
            _region: region,
            seq,
            waiters,
        })
    }

    /// Snapshot the sequence number. Read this *before* the final ring
    /// poll that decides to park, then pass it to [`Doorbell::park`].
    pub fn read_seq(&self) -> u32 {
        // SAFETY: seq points at a live atomic inside the mapping.
        unsafe { &*self.seq }.load(Ordering::SeqCst)
    }

    /// Signal the owning rank that new bytes await it. Cheap when nobody
    /// is parked: one RMW, no syscall.
    pub fn ring(&self) {
        // SAFETY: seq/waiters point at live atomics inside the mapping.
        unsafe { &*self.seq }.fetch_add(1, Ordering::SeqCst);
        if unsafe { &*self.waiters }.load(Ordering::SeqCst) != 0 {
            futex_wake(self.seq);
        }
    }

    /// Park until rung, `timeout`, or a spurious wake — whichever first.
    /// Returns `true` if the futex wait was actually entered (the
    /// `shm_parks` counter counts those). `seen` must come from
    /// [`Doorbell::read_seq`] *before* the caller's last empty poll.
    pub fn park(&self, seen: u32, timeout: Duration) -> bool {
        // SAFETY: waiters points at a live atomic inside the mapping.
        let waiters = unsafe { &*self.waiters };
        waiters.store(1, Ordering::SeqCst);
        // Re-check after advertising: a ring that landed between the
        // caller's poll and here would otherwise sleep the full timeout.
        // SAFETY: seq points at a live atomic inside the mapping.
        if unsafe { &*self.seq }.load(Ordering::SeqCst) != seen {
            waiters.store(0, Ordering::SeqCst);
            return false;
        }
        futex_wait(self.seq, seen, timeout);
        waiters.store(0, Ordering::SeqCst);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::transport::FrameBuf;
    use std::time::Instant;

    /// Ring-protocol tests run on the heap backing so they exercise the
    /// exact same cursor/frame code under Miri, where memfd/mmap/futex
    /// syscalls do not exist.
    fn pair(ring_bytes: u32) -> (Arc<ShmRegion>, RingProducer, RingConsumer) {
        let region = ShmRegion::create_heap(2, ring_bytes, 42).unwrap();
        let p = RingProducer::attach(region.clone(), 0, 1).unwrap();
        let c = RingConsumer::attach(region.clone(), 0, 1).unwrap();
        (region, p, c)
    }

    #[test]
    fn heap_region_uses_the_fd_sentinel() {
        let region = ShmRegion::create_heap(3, 8192, 7).unwrap();
        assert_eq!(region.fd(), -1);
        assert_eq!(region.n_procs(), 3);
        assert_eq!(region.ring_bytes(), 8192);
        assert_eq!(region.invocation(), 7);
        assert!(ShmRegion::create_heap(0, 8192, 7).is_err());
    }

    #[test]
    fn heap_ring_round_trips_frames() {
        let (_r, p, mut c) = pair(4096);
        assert!(p.try_push(6, b"heap-backed"));
        let polled = FrameBuf::default().poll(&mut c).unwrap();
        assert_eq!(polled.frames, vec![(6, b"heap-backed".to_vec())]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "memfd_create/mmap syscalls are unsupported under Miri")]
    fn header_roundtrips_through_from_fd() {
        let region = ShmRegion::create(3, 8192, 7).unwrap();
        let fd = region.dup_fd().unwrap();
        let twin = ShmRegion::from_fd(fd, 7).unwrap();
        assert_eq!(twin.n_procs(), 3);
        assert_eq!(twin.ring_bytes(), 8192);
        assert_eq!(twin.invocation(), 7);
        // Bytes pushed through one mapping surface in the other.
        let p = RingProducer::attach(region, 1, 2).unwrap();
        let mut c = RingConsumer::attach(twin, 1, 2).unwrap();
        assert!(p.try_push(9, b"cross-mapping"));
        let polled = FrameBuf::default().poll(&mut c).unwrap();
        assert_eq!(polled.frames, vec![(9, b"cross-mapping".to_vec())]);
    }

    #[test]
    #[cfg_attr(miri, ignore = "memfd_create/mmap syscalls are unsupported under Miri")]
    fn stale_invocation_is_rejected() {
        let region = ShmRegion::create(2, 4096, 7).unwrap();
        let fd = region.dup_fd().unwrap();
        let err = ShmRegion::from_fd(fd, 8).unwrap_err();
        assert!(
            err.to_string().contains("stale"),
            "expected a stale-region error, got: {err}"
        );
    }

    #[test]
    fn out_of_range_ranks_are_errors_not_panics() {
        let region = ShmRegion::create_heap(2, 4096, 1).unwrap();
        assert!(RingProducer::attach(region.clone(), 2, 0).is_err());
        assert!(RingConsumer::attach(region.clone(), 0, 5).is_err());
        assert!(Doorbell::attach(region, 9).is_err());
    }

    /// A frame written across the ring's wrap-around point must reassemble
    /// byte-perfectly; intermediate polls may see a torn prefix but never a
    /// torn frame.
    #[test]
    fn frames_survive_wrap_around() {
        let (_r, p, mut c) = pair(4096);
        let mut fb = FrameBuf::default();
        // Walk the cursors close to the boundary, draining as we go, then
        // push a frame that is guaranteed to straddle it.
        let filler = vec![0x5A; 900];
        for _ in 0..4 {
            assert!(p.try_push(1, &filler));
            let polled = fb.poll(&mut c).unwrap();
            assert_eq!(polled.frames.len(), 1);
        }
        // Cursors sit at 4 * 905 = 3620; this 700-byte body wraps.
        let straddle: Vec<u8> = (0..700u32).map(|i| (i * 7) as u8).collect();
        assert!(p.try_push(2, &straddle));
        let polled = fb.poll(&mut c).unwrap();
        assert_eq!(polled.frames, vec![(2, straddle)]);
        assert!(!polled.eof, "rings never report EOF");
    }

    /// The reassembly buffer must hold a torn prefix (producer died — or
    /// paused — mid-frame) without emitting anything, and complete it when
    /// the rest arrives. Peer *death* mid-frame surfaces via the TCP
    /// control plane, not here; the ring just never yields the torn half.
    #[test]
    fn torn_prefix_yields_nothing_until_completed() {
        let (_r, p, mut c) = pair(4096);
        // Hand-build a frame and push it in two raw halves by abusing two
        // pushes of a *sub*-frame: instead push whole frame, read only
        // part of it through a 1-byte reader to prove FrameBuf buffers.
        assert!(p.try_push(3, b"split-me"));
        struct OneByte<'a>(&'a mut RingConsumer);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                match self.0.read(&mut buf[..1]) {
                    Ok(n) => Ok(n),
                    Err(e) => Err(e),
                }
            }
        }
        let mut fb = FrameBuf::default();
        let mut whole = Vec::new();
        // First poll pulls the stream one byte at a time until WouldBlock,
        // so every intermediate state passed through the torn-prefix path.
        whole.extend(fb.poll(&mut OneByte(&mut c)).unwrap().frames);
        assert_eq!(whole, vec![(3, b"split-me".to_vec())]);
    }

    #[test]
    fn full_ring_applies_backpressure_and_recovers() {
        let (_r, p, mut c) = pair(4096);
        let body = vec![0xEE; 1019]; // 1024-byte frames: 4 fill the ring
        let mut pushed = 0;
        while p.try_push(4, &body) {
            pushed += 1;
            assert!(pushed <= 4, "ring accepted more than its capacity");
        }
        assert_eq!(pushed, 4);
        assert_eq!(p.free(), 0);
        // Drain one frame; exactly one slot frees up.
        let mut fb = FrameBuf::default();
        let mut scratch = [0u8; 1024];
        c.read(&mut scratch).unwrap();
        assert!(p.try_push(4, &body), "space must reopen after a drain");
        assert!(!p.try_push(4, &body), "and only one frame's worth");
        // Drain everything left and verify frame integrity end to end.
        let mut frames = Vec::new();
        // Re-inject the bytes already read into the FrameBuf stream order.
        struct Chain<'a>(&'a [u8], &'a mut RingConsumer);
        impl Read for Chain<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if !self.0.is_empty() {
                    let n = self.0.len().min(buf.len());
                    buf[..n].copy_from_slice(&self.0[..n]);
                    self.0 = &self.0[n..];
                    return Ok(n);
                }
                self.1.read(buf)
            }
        }
        frames.extend(fb.poll(&mut Chain(&scratch, &mut c)).unwrap().frames);
        assert_eq!(frames.len(), 5);
        assert!(frames.iter().all(|(k, b)| *k == 4 && *b == body));
    }

    #[test]
    fn oversize_frames_are_refused_up_front() {
        let (_r, p, _c) = pair(4096);
        let huge = vec![0u8; 3000]; // > cap/2
        assert!(!p.try_push(5, &huge));
        assert_eq!(p.free(), 4096, "refusal must not consume space");
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "futex_wait/futex_wake syscalls are unsupported under Miri"
    )]
    fn doorbell_wakes_a_parked_consumer() {
        let region = ShmRegion::create(2, 4096, 1).unwrap();
        let bell = Doorbell::attach(region.clone(), 1).unwrap();
        let waker = bell.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.ring();
        });
        let seen = bell.read_seq();
        let start = Instant::now(); // simlint: allow(R2) -- test-only latency bound, never feeds the DES
        let parked = bell.park(seen, Duration::from_secs(5));
        assert!(parked);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "wake must beat the timeout"
        );
        t.join().unwrap();
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "futex_wait/futex_wake syscalls are unsupported under Miri"
    )]
    fn park_skips_when_the_bell_already_rang() {
        let region = ShmRegion::create(2, 4096, 1).unwrap();
        let bell = Doorbell::attach(region, 0).unwrap();
        let seen = bell.read_seq();
        bell.ring();
        let start = Instant::now(); // simlint: allow(R2) -- test-only latency bound, never feeds the DES
        assert!(!bell.park(seen, Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    /// Cross-thread stress: 10k frames with varied sizes through a small
    /// ring, producer applying backpressure, consumer reassembling with
    /// FrameBuf — content and order must both survive.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "futex-based doorbells and 10k-frame stress are too slow/unsupported under Miri"
    )]
    fn spsc_stress_preserves_order_and_content() {
        let region = ShmRegion::create(2, MIN_RING_BYTES, 1).unwrap();
        let p = RingProducer::attach(region.clone(), 1, 0).unwrap();
        let mut c = RingConsumer::attach(region.clone(), 1, 0).unwrap();
        let bell = Doorbell::attach(region.clone(), 0).unwrap();
        let bell_rx = bell.clone();
        const N: u32 = 10_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let size = (i % 701) as usize;
                let body: Vec<u8> = (0..size).map(|j| (i as usize + j) as u8).collect();
                let mut spins = 0u64;
                while !p.try_push((i % 7) as u8 + 1, &body) {
                    std::thread::yield_now();
                    spins += 1;
                    assert!(spins < 50_000_000, "producer wedged at frame {i}");
                }
                bell.ring();
            }
        });
        let mut fb = FrameBuf::default();
        let mut got = 0u32;
        while got < N {
            let polled = fb.poll(&mut c).unwrap();
            for (kind, body) in polled.frames {
                assert_eq!(kind, (got % 7) as u8 + 1, "frame {got} kind");
                assert_eq!(body.len(), (got % 701) as usize, "frame {got} len");
                for (j, b) in body.iter().enumerate() {
                    assert_eq!(*b, (got as usize + j) as u8, "frame {got} byte {j}");
                }
                got += 1;
            }
            if got < N {
                let seen = bell_rx.read_seq();
                if c.pending() == 0 {
                    bell_rx.park(seen, Duration::from_millis(1));
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pending(), 0);
    }
}
