//! The networked multi-process engine (`ExecMode::Net`).
//!
//! Maps the paper's Blue Waters deployment shape onto loopback TCP: one
//! OS process per "node", each owning a contiguous PE range, a dedicated
//! comm thread per process owning the socket set (the SMP comm-thread
//! design of §III), per-destination-process aggregation lanes with
//! batch + idle flushing (§IV-C), and root-coordinated cross-process
//! completion detection (§IV-B) layered over per-process counters.
//!
//! Layout:
//! - [`wire`] — frame kinds, little-endian control/batch codecs
//! - [`transport`] — length-prefixed framing, vectored flushes, reassembly
//! - [`shm`] — same-host shared-memory SPSC rings + futex doorbells
//! - [`comm`] — the per-process comm thread and its shared state
//! - [`launch`] — SPMD self-exec launcher, mesh wiring, shm inheritance
//! - [`engine`] — [`NetEngine`], the phase loop itself
//! - [`recovery`] — CRC-framed epoch snapshots, the on-disk epoch store,
//!   and the jittered backoff shared by reconnects and respawns (§10)
//!
//! Two data-plane transports coexist (DESIGN.md §8): loopback TCP (always
//! present; carries all control traffic and serves as the fallback) and
//! the shared-memory ring transport (BATCH frames only, compute thread to
//! compute thread, selected per [`crate::NetTransport`]). Liveness is a
//! TCP property in both cases, so worker exit codes and the
//! [`TransportError`] surface are transport-independent.
//!
//! ## The SPMD contract
//!
//! Chares are not serializable, so worker processes are spawned by
//! re-executing the current binary: every process runs the *same* driver
//! code, builds the *same* chare array, and keeps only its share. The
//! engine validates this (chare count + placement-map hash in every
//! PHASE_START) and fails loudly on divergence. Phase results are
//! all-reduced, so every process observes identical [`crate::stats::PhaseStats`]
//! and inter-phase driver decisions stay in lockstep.
//!
//! Test drivers that must not run their expensive body in worker
//! processes more than once use [`worker_target`] / [`align_to_invocation`]
//! to skip unrelated work while keeping runtime-invocation counts aligned.

pub mod comm;
pub mod engine;
pub mod launch;
pub mod recovery;
pub mod shm;
pub mod transport;
pub mod wire;

pub use engine::{NetEngine, KILL_EXIT, TRANSPORT_EXIT};
pub use launch::{align_to_invocation, worker_target};
pub use recovery::{crc32, Backoff, EpochStore, PeerHealth, RecoveryError, RecoverySnapshot};
pub use transport::{read_frame, write_frame, write_frames, FrameBuf, Polled, MAX_FRAME};

/// A transport-layer failure: a peer disconnected, a frame failed to
/// decode, or the socket mesh could not be established.
///
/// This is the *typed* failure surface of the net engine (simlint rule
/// R3): the comm thread records it in [`comm::CommShared`], the root
/// surfaces it as a panic payload of exactly this type (so harnesses can
/// `downcast_ref::<TransportError>()` and distinguish a clean transport
/// failure from an arbitrary crash), and workers exit with
/// [`TRANSPORT_EXIT`] instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError(pub String);

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "net transport error: {}", self.0)
    }
}

impl std::error::Error for TransportError {}
