//! Per-destination message aggregation (§IV-C).
//!
//! "Prior versions of EpiSimdemics have shown that message aggregation is
//! crucial to achieve good performance … we provide a novel built-in message
//! aggregation mechanism". Outgoing remote messages are buffered per
//! destination PE and flushed as one network packet when the buffer reaches
//! `max_batch` or when the sending PE goes idle (so detection can make
//! progress).

use crate::chare::{ChareId, Message};
use crate::config::AggregationConfig;
use crate::faults::FaultRng;

/// An addressed message awaiting delivery.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Destination chare.
    pub to: ChareId,
    /// Payload.
    pub msg: M,
}

/// A flushed batch bound for one destination PE.
#[derive(Debug)]
pub struct Packet<M> {
    /// Destination PE index.
    pub dst_pe: u32,
    /// The aggregated envelopes.
    pub envelopes: Vec<Envelope<M>>,
    /// Payload bytes in this packet.
    pub bytes: u64,
}

/// What a [`Aggregator::push`] emitted, if anything.
///
/// With aggregation enabled a push that fills a lane yields a batched
/// [`Packet`]; with aggregation disabled every push yields a [`Flush::Single`]
/// carrying the message by value — **no** one-element envelope `Vec` is
/// allocated on that path.
#[derive(Debug)]
pub enum Flush<M> {
    /// A batched packet bound for `Packet::dst_pe`.
    Packet(Packet<M>),
    /// One message emitted immediately (aggregation disabled).
    Single {
        /// Destination PE index.
        dst_pe: u32,
        /// Destination chare.
        to: ChareId,
        /// Payload.
        msg: M,
        /// Payload bytes.
        bytes: u64,
    },
}

/// Upper bound on recycled envelope `Vec`s kept per aggregator.
const POOL_CAP: usize = 64;

/// Per-source-PE aggregation buffers, one lane per destination PE.
#[derive(Debug)]
pub struct Aggregator<M> {
    cfg: AggregationConfig,
    lanes: Vec<Vec<Envelope<M>>>,
    lane_bytes: Vec<u64>,
    /// Destinations with non-empty lanes (to avoid O(n_pes) flush scans).
    dirty: Vec<u32>,
    /// Number of packets emitted so far.
    packets: u64,
    /// Drained packet `Vec`s returned by receivers, reused for new lanes so
    /// the steady state allocates nothing per packet.
    pool: Vec<Vec<Envelope<M>>>,
}

impl<M: Message> Aggregator<M> {
    /// Buffers toward `n_pes` destinations.
    pub fn new(n_pes: u32, cfg: AggregationConfig) -> Self {
        Aggregator {
            cfg,
            lanes: (0..n_pes).map(|_| Vec::new()).collect(),
            lane_bytes: vec![0; n_pes as usize],
            dirty: Vec::new(),
            packets: 0,
            pool: Vec::new(),
        }
    }

    /// Return a drained packet's envelope `Vec` so a future lane can reuse
    /// its capacity (bounded; excess capacity is simply dropped).
    pub fn recycle(&mut self, mut envelopes: Vec<Envelope<M>>) {
        if self.pool.len() < POOL_CAP && envelopes.capacity() > 0 {
            envelopes.clear();
            self.pool.push(envelopes);
        }
    }

    /// A fresh lane backing store, pooled when possible.
    fn fresh_lane(&mut self) -> Vec<Envelope<M>> {
        self.pool.pop().unwrap_or_default()
    }

    /// Enqueue a remote message. Returns a flush if this push filled the
    /// lane (or immediately, when aggregation is disabled).
    #[simlint_macros::hot_path]
    pub fn push(&mut self, dst_pe: u32, to: ChareId, msg: M) -> Option<Flush<M>> {
        let bytes = msg.size_bytes() as u64;
        if !self.cfg.enabled {
            self.packets += 1;
            return Some(Flush::Single {
                dst_pe,
                to,
                msg,
                bytes,
            });
        }
        let lane = &mut self.lanes[dst_pe as usize];
        if lane.is_empty() {
            // simlint: allow(R6) -- dirty-lane list reaches steady state at n_pes entries; tracked by the allocs/day bench gate
            self.dirty.push(dst_pe);
        }
        // simlint: allow(R6) -- lanes are recycled buffers; pushes reuse capacity after the first flush cycle
        lane.push(Envelope { to, msg });
        self.lane_bytes[dst_pe as usize] += bytes;
        if lane.len() as u32 >= self.cfg.max_batch.max(1) {
            return self.flush_lane(dst_pe).map(Flush::Packet);
        }
        None
    }

    /// Flush one destination lane, if non-empty.
    #[simlint_macros::hot_path]
    pub fn flush_lane(&mut self, dst_pe: u32) -> Option<Packet<M>> {
        if self.lanes[dst_pe as usize].is_empty() {
            return None;
        }
        let replacement = self.fresh_lane();
        let envelopes = std::mem::replace(&mut self.lanes[dst_pe as usize], replacement);
        let bytes = std::mem::take(&mut self.lane_bytes[dst_pe as usize]);
        self.dirty.retain(|&d| d != dst_pe);
        self.packets += 1;
        Some(Packet {
            dst_pe,
            envelopes,
            bytes,
        })
    }

    /// Flush everything (called when the PE runs out of local work).
    #[simlint_macros::hot_path]
    pub fn flush_all(&mut self) -> Vec<Packet<M>> {
        let dirty = std::mem::take(&mut self.dirty);
        // simlint: allow(R6) -- one short Vec per idle flush (not per message); sized to the dirty-lane count, amortized by batching
        let mut out = Vec::with_capacity(dirty.len());
        for d in dirty {
            if self.lanes[d as usize].is_empty() {
                continue;
            }
            let replacement = self.fresh_lane();
            let envelopes = std::mem::replace(&mut self.lanes[d as usize], replacement);
            let bytes = std::mem::take(&mut self.lane_bytes[d as usize]);
            self.packets += 1;
            // simlint: allow(R6) -- pushes into the capacity reserved above; never reallocates within a flush
            out.push(Packet {
                dst_pe: d,
                envelopes,
                bytes,
            });
        }
        out
    }

    /// Flush everything in a seeded pseudo-random lane order. The idle
    /// flush of [`Self::flush_all`] always drains lanes in dirty order; the
    /// DST scheduler uses this variant to make lane order itself part of
    /// the adversarial schedule — results must not depend on it.
    pub fn flush_all_permuted(&mut self, rng: &mut FaultRng) -> Vec<Packet<M>> {
        for i in (1..self.dirty.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.dirty.swap(i, j);
        }
        self.flush_all()
    }

    /// The batch threshold currently in force.
    pub fn max_batch(&self) -> u32 {
        self.cfg.max_batch
    }

    /// Retune the batch threshold (adaptive aggregation, DESIGN.md §8).
    /// Takes effect on the next push; a lane already above a shrunken
    /// threshold flushes on its next push, so no message is stranded.
    pub fn set_max_batch(&mut self, max_batch: u32) {
        self.cfg.max_batch = max_batch.max(1);
    }

    /// Whether any lane holds messages.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Packets emitted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl Message for u32 {}

    fn cfg(enabled: bool, max_batch: u32) -> AggregationConfig {
        AggregationConfig {
            enabled,
            max_batch,
            tram_2d: false,
            adaptive: false,
        }
    }

    #[test]
    fn retuned_batch_threshold_applies_on_next_push() {
        let mut a = Aggregator::new(2, cfg(true, 64));
        assert!(a.push(1, ChareId(0), 1u32).is_none());
        assert!(a.push(1, ChareId(1), 2).is_none());
        a.set_max_batch(3);
        assert_eq!(a.max_batch(), 3);
        match a.push(1, ChareId(2), 3) {
            Some(Flush::Packet(p)) => assert_eq!(p.envelopes.len(), 3),
            other => panic!("shrunken threshold must flush, got {other:?}"),
        }
        // A threshold of zero is clamped so pushes still make progress.
        a.set_max_batch(0);
        assert_eq!(a.max_batch(), 1);
        assert!(a.push(0, ChareId(0), 9).is_some());
    }

    #[test]
    fn disabled_aggregation_emits_immediately() {
        let mut a = Aggregator::new(4, cfg(false, 64));
        match a.push(2, ChareId(9), 7u32).expect("immediate flush") {
            Flush::Single {
                dst_pe,
                to,
                msg,
                bytes,
            } => {
                assert_eq!(dst_pe, 2);
                assert_eq!(to, ChareId(9));
                assert_eq!(msg, 7);
                assert_eq!(bytes, 4);
            }
            Flush::Packet(_) => panic!("disabled path must not allocate a packet"),
        }
        assert_eq!(a.packets(), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn batch_fills_then_flushes() {
        let mut a = Aggregator::new(2, cfg(true, 3));
        assert!(a.push(1, ChareId(0), 1u32).is_none());
        assert!(a.push(1, ChareId(1), 2).is_none());
        let p = match a.push(1, ChareId(2), 3).expect("third push flushes") {
            Flush::Packet(p) => p,
            Flush::Single { .. } => panic!("enabled path batches"),
        };
        assert_eq!(p.envelopes.len(), 3);
        assert_eq!(p.bytes, 12);
        assert_eq!(a.packets(), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut a = Aggregator::new(1, cfg(true, 8));
        for i in 0..4u32 {
            a.push(0, ChareId(i), i);
        }
        let mut p = a.flush_all().pop().expect("dirty lane flushes");
        assert!(p.envelopes.capacity() >= 4);
        p.envelopes.clear();
        let ptr = p.envelopes.as_ptr();
        a.recycle(p.envelopes);
        // The next flush installs the pooled buffer as the lane's new
        // backing store, so the round after that returns the same
        // allocation.
        for round in 0..2 {
            for i in 0..4u32 {
                a.push(0, ChareId(i), i);
            }
            let p = a.flush_all().pop().expect("dirty lane flushes");
            if round == 1 {
                assert_eq!(p.envelopes.as_ptr(), ptr, "pooled buffer reused");
            }
        }
    }

    #[test]
    fn flush_all_drains_every_lane() {
        let mut a = Aggregator::new(4, cfg(true, 100));
        a.push(0, ChareId(0), 1u32);
        a.push(2, ChareId(1), 2);
        a.push(2, ChareId(2), 3);
        assert!(!a.is_empty());
        let mut packets = a.flush_all();
        packets.sort_by_key(|p| p.dst_pe);
        assert_eq!(packets.len(), 2);
        assert_eq!(packets[0].dst_pe, 0);
        assert_eq!(packets[1].envelopes.len(), 2);
        assert!(a.is_empty());
        assert_eq!(a.packets(), 2);
    }

    #[test]
    fn aggregation_reduces_packet_count() {
        // 1000 messages to one destination: 10 packets at batch 100 vs
        // 1000 without aggregation — the §IV-C effect.
        let mut on = Aggregator::new(1, cfg(true, 100));
        let mut off = Aggregator::new(1, cfg(false, 100));
        for i in 0..1000u32 {
            on.push(0, ChareId(i), i);
            off.push(0, ChareId(i), i);
        }
        on.flush_all();
        assert_eq!(on.packets(), 10);
        assert_eq!(off.packets(), 1000);
    }

    #[test]
    fn permuted_flush_same_packets_any_order() {
        let fill = |a: &mut Aggregator<u32>| {
            for d in 0..8u32 {
                for i in 0..3u32 {
                    a.push(d, ChareId(d * 10 + i), i);
                }
            }
        };
        let mut plain = Aggregator::new(8, cfg(true, 100));
        fill(&mut plain);
        let mut want: Vec<(u32, usize)> = plain
            .flush_all()
            .iter()
            .map(|p| (p.dst_pe, p.envelopes.len()))
            .collect();
        want.sort_unstable();
        for seed in 0..4u64 {
            let mut a = Aggregator::new(8, cfg(true, 100));
            fill(&mut a);
            let mut rng = FaultRng::new(seed);
            let mut got: Vec<(u32, usize)> = a
                .flush_all_permuted(&mut rng)
                .iter()
                .map(|p| (p.dst_pe, p.envelopes.len()))
                .collect();
            got.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
            assert!(a.is_empty());
        }
        // The permutation is deterministic per seed.
        let order = |seed: u64| {
            let mut a = Aggregator::new(8, cfg(true, 100));
            fill(&mut a);
            let mut rng = FaultRng::new(seed);
            a.flush_all_permuted(&mut rng)
                .iter()
                .map(|p| p.dst_pe)
                .collect::<Vec<_>>()
        };
        assert_eq!(order(3), order(3));
    }

    #[test]
    fn flush_empty_lane_is_none() {
        let mut a: Aggregator<u32> = Aggregator::new(2, cfg(true, 4));
        assert!(a.flush_lane(0).is_none());
        assert!(a.flush_all().is_empty());
    }

    #[test]
    fn messages_preserved_in_order_per_lane() {
        let mut a = Aggregator::new(1, cfg(true, 10));
        for i in 0..5u32 {
            a.push(0, ChareId(i), i * 10);
        }
        let p = a.flush_all().pop().unwrap();
        let vals: Vec<u32> = p.envelopes.iter().map(|e| e.msg).collect();
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
    }
}
