//! The deterministic sequential engine.
//!
//! Simulates any number of PEs on the calling thread with strict
//! round-robin draining, while keeping every counter the threaded engine
//! keeps — including per-PE busy time, which makes this engine the
//! calibration harness for `scale-model`: run the real application at P
//! simulated PEs on one core and read off per-PE compute times and message
//! counts.

use crate::aggregator::{Aggregator, Envelope, Flush, Packet};
use crate::chare::{Chare, ChareId, Ctx, Message, Sender};
use crate::config::RuntimeConfig;
use crate::stats::{PeStats, PhaseStats, ReductionSlots};
use crate::tram::Grid2D;
use std::collections::VecDeque;
use std::time::Instant;

/// Messages drained from one PE's queue before moving to the next
/// (fairness quantum).
const QUANTUM: usize = 256;

struct OutBuf<M> {
    items: Vec<(ChareId, M)>,
}

impl<M: Message> Sender<M> for OutBuf<M> {
    fn send(&mut self, to: ChareId, msg: M) {
        self.items.push((to, msg));
    }
}

/// The sequential engine.
pub struct SeqEngine<M: Message> {
    cfg: RuntimeConfig,
    chares: Vec<Option<Box<dyn Chare<M>>>>,
    pe_of: Vec<u32>,
    queues: Vec<VecDeque<Envelope<M>>>,
    aggregators: Vec<Aggregator<M>>,
    stats: Vec<PeStats>,
    reductions: Vec<ReductionSlots>,
    out: OutBuf<M>,
    grid: Grid2D,
}

impl<M: Message> SeqEngine<M> {
    /// Create an engine for `cfg.n_pes` simulated PEs.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let n = cfg.n_pes as usize;
        SeqEngine {
            chares: Vec::new(),
            pe_of: Vec::new(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            aggregators: (0..n)
                .map(|_| Aggregator::new(cfg.n_pes, cfg.aggregation))
                .collect(),
            stats: vec![PeStats::default(); n],
            reductions: vec![ReductionSlots::default(); n],
            out: OutBuf { items: Vec::new() },
            grid: Grid2D::new(cfg.n_pes),
            cfg,
        }
    }

    /// Register a chare on a PE. Ids must be dense from 0.
    pub fn add_chare(&mut self, id: ChareId, pe: u32, chare: Box<dyn Chare<M>>) {
        assert!(pe < self.cfg.n_pes, "pe {pe} out of range");
        let idx = id.0 as usize;
        if self.chares.len() <= idx {
            self.chares.resize_with(idx + 1, || None);
            self.pe_of.resize(idx + 1, u32::MAX);
        }
        assert!(self.chares[idx].is_none(), "duplicate chare id {idx}");
        self.chares[idx] = Some(chare);
        self.pe_of[idx] = pe;
    }

    fn route(&mut self, src_pe: u32, to: ChareId, msg: M) {
        let dst_pe = self.pe_of[to.0 as usize];
        debug_assert_ne!(dst_pe, u32::MAX, "send to unregistered chare {}", to.0);
        let st = &mut self.stats[src_pe as usize];
        if dst_pe == src_pe {
            st.sent_self += 1;
            self.queues[dst_pe as usize].push_back(Envelope { to, msg });
        } else if self.cfg.smp.same_process(src_pe, dst_pe) {
            // Direct memory copy between threads of one process (§IV-A).
            st.sent_intra += 1;
            self.queues[dst_pe as usize].push_back(Envelope { to, msg });
        } else {
            st.sent_remote += 1;
            st.remote_bytes += msg.size_bytes() as u64;
            let hop = if self.cfg.aggregation.tram_2d {
                self.grid.next_hop(src_pe, dst_pe)
            } else {
                dst_pe
            };
            if let Some(flush) = self.aggregators[src_pe as usize].push(hop, to, msg) {
                self.deliver(src_pe, flush);
            }
        }
    }

    /// Relay an envelope that arrived at an intermediate PE (TRAM).
    fn forward(&mut self, via_pe: u32, to: ChareId, msg: M) {
        let dst_pe = self.pe_of[to.0 as usize];
        let hop = self.grid.next_hop(via_pe, dst_pe);
        self.stats[via_pe as usize].forwarded += 1;
        if let Some(flush) = self.aggregators[via_pe as usize].push(hop, to, msg) {
            self.deliver(via_pe, flush);
        }
    }

    /// Move a flush from `src_pe` into the destination queue, recycling the
    /// drained packet `Vec` back into the sender's aggregator pool.
    fn deliver(&mut self, src_pe: u32, flush: Flush<M>) {
        self.stats[src_pe as usize].network_packets += 1;
        match flush {
            Flush::Packet(packet) => self.deliver_packet(src_pe, packet),
            Flush::Single {
                dst_pe, to, msg, ..
            } => {
                self.queues[dst_pe as usize].push_back(Envelope { to, msg });
            }
        }
    }

    fn deliver_packet(&mut self, src_pe: u32, mut packet: Packet<M>) {
        self.queues[packet.dst_pe as usize].extend(packet.envelopes.drain(..));
        self.aggregators[src_pe as usize].recycle(packet.envelopes);
    }

    fn process_one(&mut self, pe: u32, env: Envelope<M>) {
        let idx = env.to.0 as usize;
        if self.pe_of[idx] != pe {
            // TRAM intermediate hop: relay toward the owner.
            debug_assert!(self.cfg.aggregation.tram_2d);
            self.forward(pe, env.to, env.msg);
            return;
        }
        let mut chare = self.chares[idx].take().unwrap_or_else(|| {
            panic!("message for unregistered chare {idx}");
        });
        let start = Instant::now(); // simlint: allow(R2) -- busy_ns load metric only; load balancing consumes it between phases, DES state never does
        {
            let mut ctx = Ctx {
                sender: &mut self.out,
                reductions: &mut self.reductions[pe as usize],
                self_id: env.to,
            };
            chare.receive(env.msg, &mut ctx);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        self.chares[idx] = Some(chare);
        let st = &mut self.stats[pe as usize];
        st.busy_ns += elapsed;
        st.processed += 1;
        // Route what the chare sent (drain-and-restore keeps capacity).
        let mut items = std::mem::take(&mut self.out.items);
        for (to, msg) in items.drain(..) {
            self.route(pe, to, msg);
        }
        self.out.items = items;
    }

    /// Run one phase to completion: inject, then drain round-robin until no
    /// queue and no aggregation lane holds a message.
    pub fn run_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        let n = self.cfg.n_pes as usize;
        for s in &mut self.stats {
            *s = PeStats::default();
        }
        for r in &mut self.reductions {
            r.clear();
        }
        for (to, msg) in injections {
            let pe = self.pe_of[to.0 as usize];
            self.queues[pe as usize].push_back(Envelope { to, msg });
        }
        loop {
            let mut processed_any = false;
            for pe in 0..n {
                for _ in 0..QUANTUM {
                    match self.queues[pe].pop_front() {
                        Some(env) => {
                            self.process_one(pe as u32, env);
                            processed_any = true;
                        }
                        None => break,
                    }
                }
            }
            if !processed_any {
                // Everyone idle: flush aggregation lanes (the idle-flush of
                // §IV-C); if nothing was buffered we are complete.
                let mut flushed_any = false;
                for pe in 0..n {
                    let packets = self.aggregators[pe].flush_all();
                    for packet in packets {
                        self.stats[pe].network_packets += 1;
                        self.deliver_packet(pe as u32, packet);
                        flushed_any = true;
                    }
                }
                if !flushed_any {
                    break;
                }
            }
        }
        let mut reductions = ReductionSlots::default();
        for r in &self.reductions {
            reductions.merge(r);
        }
        PhaseStats {
            per_pe: self.stats.clone(),
            reductions,
        }
    }

    /// Tear down, returning all chares.
    pub fn into_chares(self) -> Vec<(ChareId, Box<dyn Chare<M>>)> {
        self.chares
            .into_iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (ChareId(i as u32), c)))
            .collect()
    }

    /// Immutable access to a chare (between phases) for result extraction.
    pub fn chare(&self, id: ChareId) -> Option<&dyn Chare<M>> {
        self.chares.get(id.0 as usize).and_then(|c| c.as_deref())
    }

    /// Serialize every chare that opts into checkpointing
    /// ([`Chare::snapshot`] returning `Some`), as `(chare id, bytes)`
    /// pairs. Only meaningful between phases.
    pub fn snapshot_chares(&self) -> Vec<(u32, Vec<u8>)> {
        self.chares
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref()
                    .and_then(|c| c.snapshot().map(|bytes| (i as u32, bytes)))
            })
            .collect()
    }

    /// Number of PEs.
    pub fn n_pes(&self) -> u32 {
        self.cfg.n_pes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggregationConfig, RuntimeConfig};

    /// Token-passing chare: forwards a countdown to the next chare.
    struct Relay {
        next: ChareId,
        seen: u64,
    }

    #[derive(Debug)]
    struct Token(u64);
    impl Message for Token {}

    impl Chare<Token> for Relay {
        fn receive(&mut self, msg: Token, ctx: &mut Ctx<'_, Token>) {
            self.seen += 1;
            ctx.contribute(0, 1);
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn ring_engine(n_chares: u32, n_pes: u32) -> SeqEngine<Token> {
        let mut eng = SeqEngine::new(RuntimeConfig::sequential(n_pes));
        for i in 0..n_chares {
            eng.add_chare(
                ChareId(i),
                i % n_pes,
                Box::new(Relay {
                    next: ChareId((i + 1) % n_chares),
                    seen: 0,
                }),
            );
        }
        eng
    }

    #[test]
    fn token_ring_completes() {
        let mut eng = ring_engine(8, 4);
        let stats = eng.run_phase(vec![(ChareId(0), Token(100))]);
        // 101 deliveries total (token value 100 → 0).
        assert_eq!(stats.reduction(0), 101);
        assert_eq!(stats.totals().processed, 101);
    }

    #[test]
    fn message_classification() {
        // 4 PEs, 2 per process: chare i on pe i.
        let mut cfg = RuntimeConfig::sequential(4);
        cfg.smp.pes_per_process = 2;
        let mut eng = SeqEngine::new(cfg);
        for i in 0..4u32 {
            eng.add_chare(
                ChareId(i),
                i,
                Box::new(Relay {
                    next: ChareId((i + 1) % 4),
                    seen: 0,
                }),
            );
        }
        let stats = eng.run_phase(vec![(ChareId(0), Token(3))]);
        let t = stats.totals();
        // Hops: 0→1 (intra), 1→2 (remote), 2→3 (intra); injection isn't a
        // send.
        assert_eq!(t.sent_intra, 2);
        assert_eq!(t.sent_remote, 1);
        assert_eq!(t.sent_self, 0);
    }

    #[test]
    fn self_sends_cheapest() {
        struct SelfLooper;
        impl Chare<Token> for SelfLooper {
            fn receive(&mut self, msg: Token, ctx: &mut Ctx<'_, Token>) {
                if msg.0 > 0 {
                    ctx.send(ctx.self_id(), Token(msg.0 - 1));
                }
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut eng = SeqEngine::new(RuntimeConfig::sequential(2));
        eng.add_chare(ChareId(0), 0, Box::new(SelfLooper));
        let stats = eng.run_phase(vec![(ChareId(0), Token(10))]);
        let t = stats.totals();
        assert_eq!(t.sent_self, 10);
        assert_eq!(t.sent_remote, 0);
        assert_eq!(t.network_packets, 0);
    }

    #[test]
    fn aggregation_batches_remote_traffic() {
        // One sender chare fires many messages at a remote receiver.
        struct Burst {
            target: ChareId,
            n: u32,
        }
        impl Chare<Token> for Burst {
            fn receive(&mut self, _msg: Token, ctx: &mut Ctx<'_, Token>) {
                for _ in 0..self.n {
                    ctx.send(self.target, Token(0));
                }
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        struct Sink;
        impl Chare<Token> for Sink {
            fn receive(&mut self, _m: Token, _c: &mut Ctx<'_, Token>) {}

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let run = |agg: AggregationConfig| {
            let mut cfg = RuntimeConfig::sequential(2);
            cfg.smp.pes_per_process = 1; // PEs in distinct processes
            cfg.aggregation = agg;
            let mut eng = SeqEngine::new(cfg);
            eng.add_chare(
                ChareId(0),
                0,
                Box::new(Burst {
                    target: ChareId(1),
                    n: 1000,
                }),
            );
            eng.add_chare(ChareId(1), 1, Box::new(Sink));
            eng.run_phase(vec![(ChareId(0), Token(0))]).totals()
        };
        let on = run(AggregationConfig {
            enabled: true,
            max_batch: 100,
            tram_2d: false,
            adaptive: false,
        });
        let off = run(AggregationConfig {
            enabled: false,
            max_batch: 100,
            tram_2d: false,
            adaptive: false,
        });
        assert_eq!(on.sent_remote, 1000);
        assert_eq!(off.sent_remote, 1000);
        assert_eq!(on.network_packets, 10);
        assert_eq!(off.network_packets, 1000);
        assert_eq!(on.processed, off.processed);
    }

    #[test]
    fn multiple_phases_reset_counters() {
        let mut eng = ring_engine(4, 2);
        let s1 = eng.run_phase(vec![(ChareId(0), Token(10))]);
        let s2 = eng.run_phase(vec![(ChareId(0), Token(5))]);
        assert_eq!(s1.reduction(0), 11);
        assert_eq!(s2.reduction(0), 6);
        // State persists across phases though:
        let total_seen: u64 = eng
            .into_chares()
            .into_iter()
            .map(|(_, c)| {
                // Downcast via the concrete test type is unavailable for
                // Box<dyn Chare>; instead verify through reductions above.
                let _ = c;
                0u64
            })
            .sum();
        let _ = total_seen;
    }

    #[test]
    fn busy_time_recorded() {
        struct Spin;
        impl Chare<Token> for Spin {
            fn receive(&mut self, _m: Token, _c: &mut Ctx<'_, Token>) {
                // A measurable amount of work.
                let mut acc = 0u64;
                for i in 0..100_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                std::hint::black_box(acc);
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut eng = SeqEngine::new(RuntimeConfig::sequential(1));
        eng.add_chare(ChareId(0), 0, Box::new(Spin));
        let stats = eng.run_phase(vec![(ChareId(0), Token(0))]);
        assert!(stats.max_busy_ns() > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_chare_rejected() {
        let mut eng: SeqEngine<Token> = SeqEngine::new(RuntimeConfig::sequential(1));
        eng.add_chare(
            ChareId(0),
            0,
            Box::new(Relay {
                next: ChareId(0),
                seen: 0,
            }),
        );
        eng.add_chare(
            ChareId(0),
            0,
            Box::new(Relay {
                next: ChareId(0),
                seen: 0,
            }),
        );
    }
}
