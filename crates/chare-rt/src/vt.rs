//! The virtual-time deterministic-simulation-testing (DST) engine.
//!
//! A third engine behind [`crate::runtime::Runtime`]: all PEs simulated on
//! one thread, but — unlike [`crate::seq::SeqEngine`]'s strict round-robin
//! — message delivery is driven by a virtual-time event heap whose order is
//! a deterministic function of a `u64` fault seed. Any interleaving of
//! packet delivery the threaded engine could exhibit (and many it is
//! unlikely to) can be replayed exactly, and the [`crate::faults`] hook in
//! the send path injects delay, reordering across aggregation lanes,
//! duplicate delivery, bounded drop-with-redelivery, and PE stalls.
//!
//! The engine doubles as a harness for the §IV-B completion-detection
//! contract: it drives a real [`CompletionDetector`] with the same
//! produce/consume/idle protocol the threaded workers use and asserts, on
//! every event,
//!
//! * **no early signal** — if `try_detect()` returns `true` while any
//!   payload is still in flight, the detector (or our counting) is broken;
//! * **bounded liveness** — virtual time may not exceed the budget accrued
//!   from scheduled packets (a runaway stall/retransmit loop trips it), and
//!   once the transport drains the detector *must* fire (unless the plan
//!   deliberately lost messages, in which case it must *not* fire and the
//!   loss is surfaced in [`PeStats::lost`]).
//!
//! Transport reliability is modelled with a take-once payload slab: every
//! packet's payload is stored once and taken by the first arrival; a
//! duplicate arrival finds it gone and is suppressed (exactly-once delivery
//! from an at-least-once wire). A drop without redelivery leaves the
//! payload stranded — counted as lost at phase end, never silently eaten.

use crate::aggregator::{Aggregator, Envelope, Flush};
use crate::chare::{Chare, ChareId, Ctx, Message, Sender};
use crate::completion::CompletionDetector;
use crate::config::RuntimeConfig;
use crate::faults::{FaultHook, FaultRng, PlanFaults};
use crate::stats::{PeStats, PhaseStats, ReductionSlots};
use crate::tram::Grid2D;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

/// Virtual ticks for an intra-process hop (shared-memory handoff).
const LAT_INTRA: u64 = 1;
/// Virtual ticks for an inter-process hop (network packet).
const LAT_REMOTE: u64 = 8;
/// Virtual ticks from a dropped transmission to its retransmission.
const LAT_RETRANSMIT: u64 = 64;
/// Slack added per packet to the virtual-time watchdog budget.
const WATCHDOG_SLACK: u64 = 16;

/// One scheduled packet arrival. Payloads live in the slab, so events stay
/// `Copy`-sized and the heap order — `(at, seq)`, with `seq` unique — is
/// total and deterministic.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: u64,
    seq: u64,
    dst_pe: u32,
    pkt: u32,
}

struct OutBuf<M> {
    items: Vec<(ChareId, M)>,
}

impl<M: Message> Sender<M> for OutBuf<M> {
    fn send(&mut self, to: ChareId, msg: M) {
        self.items.push((to, msg));
    }
}

/// The DST engine. `H` decides per-packet fates; the default
/// [`PlanFaults`] replays [`RuntimeConfig::faults`], while
/// [`crate::faults::NoFaults`] yields a pure virtual-time scheduler with
/// every hook call compiled away.
pub struct VtEngine<M: Message, H: FaultHook = PlanFaults> {
    cfg: RuntimeConfig,
    hook: H,
    /// Deterministic stream for schedule-shaping choices the hook does not
    /// make (duplicate jitter, idle-flush lane order).
    order_rng: FaultRng,
    chares: Vec<Option<Box<dyn Chare<M>>>>,
    pe_of: Vec<u32>,
    heap: BinaryHeap<Reverse<Event>>,
    /// Take-once payload slab: `Some` = in flight, `None` = delivered.
    slab: Vec<Option<(u32, Vec<Envelope<M>>)>>,
    /// Envelopes currently in the slab (produced, not yet consumed).
    in_flight: u64,
    now: u64,
    next_seq: u64,
    /// Virtual-time budget accrued from scheduled packets (watchdog).
    deadline: u64,
    stall_until: Vec<u64>,
    aggregators: Vec<Aggregator<M>>,
    stats: Vec<PeStats>,
    reductions: Vec<ReductionSlots>,
    out: OutBuf<M>,
    local_q: VecDeque<Envelope<M>>,
    grid: Grid2D,
    cd: CompletionDetector,
}

impl<M: Message> VtEngine<M, PlanFaults> {
    /// Engine replaying `cfg.faults`.
    pub fn new(cfg: RuntimeConfig) -> Self {
        Self::with_hook(cfg, PlanFaults::new(cfg.faults))
    }
}

impl<M: Message, H: FaultHook> VtEngine<M, H> {
    /// Engine with an explicit fault hook.
    pub fn with_hook(cfg: RuntimeConfig, hook: H) -> Self {
        let n = cfg.n_pes as usize;
        VtEngine {
            hook,
            order_rng: FaultRng::new(cfg.faults.seed ^ 0xD57C0FFEE),
            chares: Vec::new(),
            pe_of: Vec::new(),
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            in_flight: 0,
            now: 0,
            next_seq: 0,
            deadline: 0,
            stall_until: vec![0; n],
            aggregators: (0..n)
                .map(|_| Aggregator::new(cfg.n_pes, cfg.aggregation))
                .collect(),
            stats: vec![PeStats::default(); n],
            reductions: vec![ReductionSlots::default(); n],
            out: OutBuf { items: Vec::new() },
            local_q: VecDeque::new(),
            grid: Grid2D::new(cfg.n_pes),
            cd: CompletionDetector::new(cfg.n_pes),
            cfg,
        }
    }

    /// Register a chare on a PE. Ids must be dense from 0.
    pub fn add_chare(&mut self, id: ChareId, pe: u32, chare: Box<dyn Chare<M>>) {
        assert!(pe < self.cfg.n_pes, "pe {pe} out of range");
        let idx = id.0 as usize;
        if self.chares.len() <= idx {
            self.chares.resize_with(idx + 1, || None);
            self.pe_of.resize(idx + 1, u32::MAX);
        }
        assert!(self.chares[idx].is_none(), "duplicate chare id {idx}");
        self.chares[idx] = Some(chare);
        self.pe_of[idx] = pe;
    }

    fn schedule(&mut self, at: u64, dst_pe: u32, pkt: u32) {
        // Arrivals scheduled while the destination is stalled land no
        // earlier than the stall's end.
        let at = at.max(self.stall_until[dst_pe as usize]);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event {
            at,
            seq,
            dst_pe,
            pkt,
        }));
    }

    /// Ship one packet from `src` to `dst`, consulting the fault hook.
    fn send_packet(&mut self, src: u32, dst: u32, envelopes: Vec<Envelope<M>>) {
        let same_proc = self.cfg.smp.same_process(src, dst);
        if !same_proc {
            self.stats[src as usize].network_packets += 1;
        }
        let fate = self.hook.packet_fate(src, dst);
        if fate.stall_ticks > 0 {
            let s = &mut self.stall_until[dst as usize];
            *s = (*s).max(self.now) + fate.stall_ticks;
        }
        let base = if same_proc { LAT_INTRA } else { LAT_REMOTE };
        let t0 = self.now + base + fate.extra_delay;
        // Watchdog budget: the latest arrival this send can generate is the
        // duplicate's jittered copy (< base + 2·(base + retransmit)) or the
        // retransmission (t0 + retransmit), on top of any stall this packet
        // opens. Each send accrues that allowance, so virtual time beyond
        // the budget means the schedule is feeding on itself.
        self.deadline = self
            .deadline
            .max(self.now)
            .saturating_add(fate.extra_delay + fate.stall_ticks + 3 * (base + LAT_RETRANSMIT))
            .saturating_add(WATCHDOG_SLACK);
        self.in_flight += envelopes.len() as u64;
        let pkt = self.slab.len() as u32;
        self.slab.push(Some((src, envelopes)));
        if fate.drop {
            self.stats[src as usize].faults_dropped += 1;
            if fate.redeliver {
                self.schedule(t0 + LAT_RETRANSMIT, dst, pkt);
            }
            // No redelivery: the payload stays stranded in the slab and is
            // reported as lost at phase end.
            return;
        }
        self.schedule(t0, dst, pkt);
        if fate.duplicate {
            // Independent jitter, so the copy may overtake the original.
            let jitter = self.order_rng.below(2 * (base + LAT_RETRANSMIT));
            self.schedule(self.now + base + jitter, dst, pkt);
        }
    }

    fn emit(&mut self, src: u32, flush: Flush<M>) {
        match flush {
            Flush::Packet(p) => self.send_packet(src, p.dst_pe, p.envelopes),
            Flush::Single {
                dst_pe, to, msg, ..
            } => self.send_packet(src, dst_pe, vec![Envelope { to, msg }]),
        }
    }

    /// Route one outgoing message from a chare running on `src`.
    fn route(&mut self, src: u32, to: ChareId, msg: M) {
        let dst = self.pe_of[to.0 as usize];
        debug_assert_ne!(dst, u32::MAX, "send to unregistered chare {}", to.0);
        if dst == src {
            self.stats[src as usize].sent_self += 1;
            self.local_q.push_back(Envelope { to, msg });
            return;
        }
        self.cd.produce(src, 1);
        let hop = if self.cfg.smp.same_process(src, dst) {
            self.stats[src as usize].sent_intra += 1;
            dst
        } else {
            let st = &mut self.stats[src as usize];
            st.sent_remote += 1;
            st.remote_bytes += msg.size_bytes() as u64;
            if self.cfg.aggregation.tram_2d {
                self.grid.next_hop(src, dst)
            } else {
                dst
            }
        };
        if let Some(flush) = self.aggregators[src as usize].push(hop, to, msg) {
            self.emit(src, flush);
        }
    }

    /// Execute one envelope owned by `pe` (no TRAM relay check here).
    fn run_chare(&mut self, pe: u32, env: Envelope<M>) {
        let idx = env.to.0 as usize;
        let mut chare = self.chares[idx]
            .take()
            .unwrap_or_else(|| panic!("message for unregistered chare {idx}"));
        let start = Instant::now(); // simlint: allow(R2) -- busy_ns load metric only; load balancing consumes it between phases, DES state never does
        {
            let mut ctx = Ctx {
                sender: &mut self.out,
                reductions: &mut self.reductions[pe as usize],
                self_id: env.to,
            };
            chare.receive(env.msg, &mut ctx);
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        self.chares[idx] = Some(chare);
        let st = &mut self.stats[pe as usize];
        st.busy_ns += elapsed;
        st.processed += 1;
        let mut items = std::mem::take(&mut self.out.items);
        for (to, msg) in items.drain(..) {
            self.route(pe, to, msg);
        }
        self.out.items = items;
    }

    /// Handle one arriving envelope at `pe`: relay it (TRAM intermediate
    /// hop) or execute it plus everything it self-enqueues.
    fn handle_envelope(&mut self, pe: u32, env: Envelope<M>) {
        if self.pe_of[env.to.0 as usize] != pe {
            debug_assert!(self.cfg.aggregation.tram_2d);
            self.stats[pe as usize].forwarded += 1;
            self.cd.produce(pe, 1);
            let dst = self.pe_of[env.to.0 as usize];
            let hop = self.grid.next_hop(pe, dst);
            if let Some(flush) = self.aggregators[pe as usize].push(hop, env.to, env.msg) {
                self.emit(pe, flush);
            }
            return;
        }
        self.run_chare(pe, env);
        while let Some(e) = self.local_q.pop_front() {
            self.run_chare(pe, e);
        }
    }

    /// Pop and process one event. Returns `false` when the heap is empty.
    fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "virtual time went backwards");
        self.now = ev.at;
        assert!(
            self.now <= self.deadline,
            "virtual-time watchdog: t={} exceeds budget {} — runaway stall/retransmit schedule",
            self.now,
            self.deadline
        );
        let pe = ev.dst_pe;
        match self.slab[ev.pkt as usize].take() {
            None => {
                // The payload was already taken: this arrival is the
                // duplicate (or the late original the duplicate overtook).
                self.stats[pe as usize].faults_dup_suppressed += 1;
            }
            Some((_src, mut envelopes)) => {
                self.in_flight -= envelopes.len() as u64;
                self.cd.set_idle(pe, false);
                let n = envelopes.len() as u64;
                for env in envelopes.drain(..) {
                    self.handle_envelope(pe, env);
                }
                self.cd.consume(pe, n);
                self.aggregators[pe as usize].recycle(envelopes);
                let idle = self.aggregators[pe as usize].is_empty();
                self.cd.set_idle(pe, idle);
            }
        }
        // §IV-B contract, checked on every event: the detector may only
        // signal when nothing is in flight and no lane holds a message.
        if self.cd.try_detect() {
            assert_eq!(
                self.in_flight, 0,
                "completion detection signalled early: {} envelope(s) still in flight at t={}",
                self.in_flight, self.now
            );
        }
        true
    }

    /// Flush every dirty aggregation lane in a seeded order (reordering
    /// across lanes is itself a fault surface). Returns whether anything
    /// was flushed.
    fn idle_flush(&mut self) -> bool {
        let mut flushed = false;
        let mut order: Vec<u32> = (0..self.cfg.n_pes).collect();
        // Fisher–Yates with the engine's deterministic stream.
        for i in (1..order.len()).rev() {
            let j = self.order_rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        for pe in order {
            let packets = self.aggregators[pe as usize].flush_all_permuted(&mut self.order_rng);
            for packet in packets {
                self.send_packet(pe, packet.dst_pe, packet.envelopes);
                flushed = true;
            }
            if self.aggregators[pe as usize].is_empty() {
                self.cd.set_idle(pe, true);
            }
        }
        flushed
    }

    /// Run one phase to completion under the fault schedule.
    pub fn run_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        for s in &mut self.stats {
            *s = PeStats::default();
        }
        for r in &mut self.reductions {
            r.clear();
        }
        self.cd.reset();
        self.now = 0;
        self.deadline = WATCHDOG_SLACK;
        self.next_seq = 0;
        self.slab.clear();
        self.in_flight = 0;
        self.stall_until.iter_mut().for_each(|s| *s = 0);
        // All PEs start drained and flushed.
        for pe in 0..self.cfg.n_pes {
            self.cd.set_idle(pe, true);
        }
        for (to, msg) in injections {
            let pe = self.pe_of[to.0 as usize];
            // Injections are produced by the coordinator (as in the
            // threaded engine) and ride the faulty transport like any
            // other packet.
            self.cd.produce(pe, 1);
            self.send_packet(pe, pe, vec![Envelope { to, msg }]);
        }
        loop {
            while self.step() {}
            if !self.idle_flush() {
                break;
            }
        }
        // Quiescence: heap empty, all lanes flushed. Account any payloads a
        // non-benign plan stranded in the slab.
        let mut lost = 0u64;
        for (src, envelopes) in self.slab.drain(..).flatten() {
            let n = envelopes.len() as u64;
            self.stats[src as usize].lost += n;
            lost += n;
        }
        self.in_flight = 0;
        if lost == 0 {
            // Bounded liveness: with nothing lost, the detector must fire
            // the moment the transport drains.
            assert!(
                self.cd.try_detect(),
                "completion detection failed to fire at quiescence \
                 (produced {}, consumed {})",
                self.cd.total_produced(),
                self.cd.total_consumed()
            );
            debug_assert_eq!(self.cd.total_produced(), self.cd.total_consumed());
        } else {
            // Messages were lost: produced > consumed, so the detector must
            // *not* report completion — the phase ends only because the
            // lossy transport is out of packets, and the loss is visible in
            // the stats.
            assert!(
                !self.cd.try_detect(),
                "completion detection fired despite {lost} lost message(s)"
            );
        }
        let mut reductions = ReductionSlots::default();
        for r in &self.reductions {
            reductions.merge(r);
        }
        PhaseStats {
            per_pe: self.stats.clone(),
            reductions,
        }
    }

    /// Tear down, returning all chares (sorted by id).
    pub fn into_chares(self) -> Vec<(ChareId, Box<dyn Chare<M>>)> {
        self.chares
            .into_iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (ChareId(i as u32), c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::faults::{FaultPlan, NoFaults};

    struct Relay {
        next: ChareId,
        seen: u64,
    }

    #[derive(Debug)]
    struct Token(u64);
    impl Message for Token {}

    impl Chare<Token> for Relay {
        fn receive(&mut self, msg: Token, ctx: &mut Ctx<'_, Token>) {
            self.seen += 1;
            ctx.contribute(0, 1);
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn ring(n_chares: u32, cfg: RuntimeConfig) -> VtEngine<Token> {
        let mut eng = VtEngine::new(cfg);
        for i in 0..n_chares {
            eng.add_chare(
                ChareId(i),
                i % cfg.n_pes,
                Box::new(Relay {
                    next: ChareId((i + 1) % n_chares),
                    seen: 0,
                }),
            );
        }
        eng
    }

    #[test]
    fn token_ring_completes_fault_free() {
        let mut eng = ring(8, RuntimeConfig::dst(4, FaultPlan::none(1)));
        let stats = eng.run_phase(vec![(ChareId(0), Token(100))]);
        assert_eq!(stats.reduction(0), 101);
        assert_eq!(stats.totals().processed, 101);
        assert_eq!(stats.totals().lost, 0);
    }

    #[test]
    fn every_grid_plan_preserves_the_outcome() {
        let reference = {
            let mut eng = ring(8, RuntimeConfig::dst(4, FaultPlan::none(0)));
            eng.run_phase(vec![(ChareId(0), Token(200))]).reduction(0)
        };
        for plan in FaultPlan::GRID {
            for seed in [1u64, 2, 3] {
                let cfg = RuntimeConfig::dst(4, plan.with_seed(seed));
                let mut eng = ring(8, cfg);
                let stats = eng.run_phase(vec![(ChareId(0), Token(200))]);
                assert_eq!(stats.reduction(0), reference, "{plan:?} seed {seed}");
                assert_eq!(stats.totals().lost, 0, "{plan:?} seed {seed}");
            }
        }
    }

    #[test]
    fn duplicates_are_suppressed_not_applied() {
        let mut plan = FaultPlan::duplicates(9);
        plan.dup_permille = 1000; // duplicate every packet
        let mut eng = ring(6, RuntimeConfig::dst(3, plan));
        let stats = eng.run_phase(vec![(ChareId(0), Token(50))]);
        assert_eq!(stats.reduction(0), 51, "duplicates must not re-execute");
        assert!(stats.totals().faults_dup_suppressed > 0);
    }

    #[test]
    fn drops_with_redelivery_lose_nothing() {
        let mut plan = FaultPlan::drops(3);
        plan.drop_permille = 1000; // every first transmission lost
        let mut eng = ring(6, RuntimeConfig::dst(3, plan));
        let stats = eng.run_phase(vec![(ChareId(0), Token(50))]);
        assert_eq!(stats.reduction(0), 51);
        assert!(stats.totals().faults_dropped > 0);
        assert_eq!(stats.totals().lost, 0);
    }

    #[test]
    fn lossy_plan_loses_messages_and_reports_them() {
        let mut eng = ring(6, RuntimeConfig::dst(3, FaultPlan::lossy(5)));
        let stats = eng.run_phase(vec![(ChareId(0), Token(50))]);
        // Even the injection is dropped: nothing executes, everything is
        // accounted as lost rather than silently vanishing.
        assert_eq!(stats.reduction(0), 0);
        assert!(stats.totals().lost > 0);
    }

    #[test]
    fn stalls_delay_but_never_break_completion() {
        let mut plan = FaultPlan::stalls(11);
        plan.stall_permille = 300;
        let mut eng = ring(8, RuntimeConfig::dst(4, plan));
        for round in 0..3 {
            let stats = eng.run_phase(vec![(ChareId(0), Token(80))]);
            assert_eq!(stats.reduction(0), 81, "round {round}");
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_schedule() {
        let run = |seed: u64| {
            let cfg = RuntimeConfig::dst(4, FaultPlan::chaos(seed));
            let mut eng = ring(8, cfg);
            let s = eng.run_phase(vec![(ChareId(0), Token(120))]);
            (
                s.reduction(0),
                s.totals().faults_dropped,
                s.totals().faults_dup_suppressed,
            )
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must replay the identical schedule");
        // Outcomes agree across seeds; the fault schedule itself differs.
        let c = run(8);
        assert_eq!(a.0, c.0);
    }

    #[test]
    fn no_faults_hook_is_a_pure_virtual_time_scheduler() {
        let cfg = RuntimeConfig::dst(4, FaultPlan::none(0));
        let mut eng: VtEngine<Token, NoFaults> = VtEngine::with_hook(cfg, NoFaults);
        for i in 0..8u32 {
            eng.add_chare(
                ChareId(i),
                i % 4,
                Box::new(Relay {
                    next: ChareId((i + 1) % 8),
                    seen: 0,
                }),
            );
        }
        let stats = eng.run_phase(vec![(ChareId(0), Token(40))]);
        assert_eq!(stats.reduction(0), 41);
        assert_eq!(stats.totals().faults_dropped, 0);
        assert_eq!(stats.totals().faults_dup_suppressed, 0);
    }

    #[test]
    fn tram_routing_survives_chaos() {
        let mut cfg = RuntimeConfig::dst(16, FaultPlan::chaos(21));
        cfg.smp.pes_per_process = 1;
        cfg.aggregation.tram_2d = true;
        let mut eng = ring(16, cfg);
        let stats = eng.run_phase(vec![(ChareId(0), Token(300))]);
        assert_eq!(stats.reduction(0), 301);
        assert_eq!(stats.totals().lost, 0);
    }

    #[test]
    fn empty_phase_terminates_immediately() {
        let mut eng = ring(4, RuntimeConfig::dst(2, FaultPlan::chaos(1)));
        let stats = eng.run_phase(vec![]);
        assert_eq!(stats.totals().processed, 0);
    }

    #[test]
    fn chares_survive_phases_and_return() {
        let mut eng = ring(5, RuntimeConfig::dst(2, FaultPlan::reorder(2)));
        eng.run_phase(vec![(ChareId(0), Token(9))]);
        let chares = eng.into_chares();
        assert_eq!(chares.len(), 5);
        assert_eq!(chares[3].0, ChareId(3));
    }
}
