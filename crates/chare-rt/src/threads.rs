//! The threaded engine: one OS thread per PE, crossbeam channels between
//! them, completion detection for phase termination.
//!
//! The protocol per phase:
//!
//! 1. the coordinator resets the [`CompletionDetector`], sends `PhaseStart`
//!    to every worker, then injects the phase's seed messages (counted as
//!    produced);
//! 2. workers drain their channels, execute chares, and send; when a worker
//!    runs dry it flushes its aggregation lanes and raises its idle flag;
//! 3. the coordinator runs two-wave detection; on success it marks the
//!    phase done, workers observe the flag, report their counters, and
//!    block awaiting the next `PhaseStart`.

use crate::aggregator::{Aggregator, Envelope, Flush, Packet};
use crate::chare::{Chare, ChareId, Ctx, Message, Sender};
use crate::completion::CompletionDetector;
use crate::config::RuntimeConfig;
use crate::stats::{PeStats, PhaseStats, ReductionSlots};
use crate::tram::Grid2D;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender as ChSender};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Item<M> {
    Direct(Envelope<M>),
    Packet(Packet<M>),
    PhaseStart,
    Shutdown,
}

struct OutBuf<M> {
    items: Vec<(ChareId, M)>,
}

impl<M: Message> Sender<M> for OutBuf<M> {
    fn send(&mut self, to: ChareId, msg: M) {
        self.items.push((to, msg));
    }
}

/// Per-PE counters a worker reports back at the end of each phase.
type StatsReport = (u32, PeStats, ReductionSlots);
/// A worker's chares, returned at shutdown.
type ChareCrate<M> = Vec<(ChareId, Box<dyn Chare<M>>)>;

struct Worker<M: Message> {
    pe: u32,
    cfg: RuntimeConfig,
    rx: Receiver<Item<M>>,
    txs: Vec<ChSender<Item<M>>>,
    cd: Arc<CompletionDetector>,
    stats_tx: ChSender<StatsReport>,
    chares_tx: ChSender<ChareCrate<M>>,
    pe_of: Arc<Vec<u32>>,
    chares: Vec<(ChareId, Box<dyn Chare<M>>)>,
    /// chare id → index into `chares` (only for local chares).
    local_idx: Vec<u32>,
    local_q: VecDeque<Envelope<M>>,
    agg: Aggregator<M>,
    stats: PeStats,
    reductions: ReductionSlots,
    out: OutBuf<M>,
    grid: Grid2D,
}

impl<M: Message> Worker<M> {
    fn route(&mut self, to: ChareId, msg: M) {
        let dst_pe = self.pe_of[to.0 as usize];
        if dst_pe == self.pe {
            self.stats.sent_self += 1;
            self.local_q.push_back(Envelope { to, msg });
            return;
        }
        self.cd.produce(self.pe, 1);
        let hop = if self.cfg.smp.same_process(self.pe, dst_pe) {
            // Intra-process traffic batches through the aggregation lanes
            // too: one channel send per packet instead of per message. The
            // flush is not a network packet (shared memory, §IV-A).
            self.stats.sent_intra += 1;
            dst_pe
        } else {
            self.stats.sent_remote += 1;
            self.stats.remote_bytes += msg.size_bytes() as u64;
            if self.cfg.aggregation.tram_2d {
                self.grid.next_hop(self.pe, dst_pe)
            } else {
                dst_pe
            }
        };
        if let Some(flush) = self.agg.push(hop, to, msg) {
            self.emit(flush);
        }
    }

    /// Relay an envelope that arrived here as a TRAM intermediate hop.
    fn forward(&mut self, to: ChareId, msg: M) {
        let dst_pe = self.pe_of[to.0 as usize];
        let hop = self.grid.next_hop(self.pe, dst_pe);
        self.stats.forwarded += 1;
        self.cd.produce(self.pe, 1);
        if let Some(flush) = self.agg.push(hop, to, msg) {
            self.emit(flush);
        }
    }

    /// Dispatch whatever the aggregator handed back. Only cross-process
    /// flushes count as network packets.
    fn emit(&mut self, flush: Flush<M>) {
        match flush {
            Flush::Packet(packet) => self.send_packet(packet),
            Flush::Single {
                dst_pe, to, msg, ..
            } => {
                if !self.cfg.smp.same_process(self.pe, dst_pe) {
                    self.stats.network_packets += 1;
                }
                let _ = self.txs[dst_pe as usize].send(Item::Direct(Envelope { to, msg }));
            }
        }
    }

    fn send_packet(&mut self, packet: Packet<M>) {
        if !self.cfg.smp.same_process(self.pe, packet.dst_pe) {
            self.stats.network_packets += 1;
        }
        let dst = packet.dst_pe as usize;
        let _ = self.txs[dst].send(Item::Packet(packet));
    }

    fn execute(&mut self, env: Envelope<M>) {
        if self.pe_of[env.to.0 as usize] != self.pe {
            // TRAM intermediate hop: relay toward the owner.
            debug_assert!(self.cfg.aggregation.tram_2d);
            self.forward(env.to, env.msg);
            return;
        }
        let li = self.local_idx[env.to.0 as usize] as usize;
        let start = Instant::now(); // simlint: allow(R2) -- busy_ns load metric only; load balancing consumes it between phases, DES state never does
        {
            let chare = &mut self.chares[li].1;
            let mut ctx = Ctx {
                sender: &mut self.out,
                reductions: &mut self.reductions,
                self_id: env.to,
            };
            chare.receive(env.msg, &mut ctx);
        }
        self.stats.busy_ns += start.elapsed().as_nanos() as u64;
        self.stats.processed += 1;
        // Drain-and-restore keeps the outbox capacity across receives.
        let mut items = std::mem::take(&mut self.out.items);
        for (to, msg) in items.drain(..) {
            self.route(to, msg);
        }
        self.out.items = items;
    }

    /// Process one inbound item; returns `false` for control items that end
    /// the phase loop.
    fn handle(&mut self, item: Item<M>) -> bool {
        match item {
            Item::Direct(env) => {
                self.execute(env);
                self.cd.consume(self.pe, 1);
                true
            }
            Item::Packet(mut packet) => {
                let n = packet.envelopes.len() as u64;
                for env in packet.envelopes.drain(..) {
                    self.execute(env);
                }
                // The drained Vec feeds this PE's own lanes.
                self.agg.recycle(packet.envelopes);
                self.cd.consume(self.pe, n);
                true
            }
            Item::PhaseStart => true, // late arrival; nothing to do
            Item::Shutdown => false,
        }
    }

    fn drain_local(&mut self) {
        while let Some(env) = self.local_q.pop_front() {
            self.execute(env);
        }
    }

    fn run_phase_loop(&mut self) -> bool {
        self.stats = PeStats::default();
        self.reductions.clear();
        loop {
            // Eat everything available without blocking.
            let mut worked = false;
            self.drain_local();
            while let Ok(item) = self.rx.try_recv() {
                if !self.handle(item) {
                    return false; // shutdown mid-phase
                }
                self.drain_local();
                worked = true;
            }
            if worked {
                continue;
            }
            // Out of work: flush aggregation lanes so receivers (and
            // detection) can progress.
            let packets = self.agg.flush_all();
            if !packets.is_empty() {
                for packet in packets {
                    self.send_packet(packet);
                }
                continue;
            }
            // Truly idle.
            self.cd.set_idle(self.pe, true);
            match self.rx.recv_timeout(Duration::from_micros(200)) {
                Ok(item) => {
                    self.cd.set_idle(self.pe, false);
                    if !self.handle(item) {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.cd.is_done() {
                        return true;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    fn run(mut self) {
        loop {
            // Await PhaseStart (or Shutdown).
            match self.rx.recv() {
                Ok(Item::PhaseStart) => {}
                Ok(Item::Shutdown) | Err(_) => break,
                Ok(other) => {
                    // A data item raced ahead of PhaseStart: treat it as the
                    // phase having begun.
                    self.cd.set_idle(self.pe, false);
                    self.stats = PeStats::default();
                    self.reductions.clear();
                    if !self.handle(other) {
                        break;
                    }
                    if !self.run_phase_loop_resume() {
                        break;
                    }
                    continue;
                }
            }
            if !self.run_phase_loop() {
                break;
            }
            let _ = self
                .stats_tx
                .send((self.pe, self.stats, self.reductions.clone()));
        }
        let chares = std::mem::take(&mut self.chares);
        let _ = self.chares_tx.send(chares);
    }

    /// Like `run_phase_loop` but without resetting counters (used when a
    /// data item raced ahead of `PhaseStart`). Consumes the pending
    /// `PhaseStart` when it arrives.
    fn run_phase_loop_resume(&mut self) -> bool {
        loop {
            let mut worked = false;
            self.drain_local();
            while let Ok(item) = self.rx.try_recv() {
                if !self.handle(item) {
                    return false;
                }
                self.drain_local();
                worked = true;
            }
            if worked {
                continue;
            }
            let packets = self.agg.flush_all();
            if !packets.is_empty() {
                for packet in packets {
                    self.send_packet(packet);
                }
                continue;
            }
            self.cd.set_idle(self.pe, true);
            match self.rx.recv_timeout(Duration::from_micros(200)) {
                Ok(item) => {
                    self.cd.set_idle(self.pe, false);
                    if !self.handle(item) {
                        return false;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.cd.is_done() {
                        let _ = self
                            .stats_tx
                            .send((self.pe, self.stats, self.reductions.clone()));
                        return true;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }
}

/// The threaded engine. Threads spawn on the first phase.
pub struct ThreadEngine<M: Message> {
    cfg: RuntimeConfig,
    pending: Vec<(ChareId, u32, Box<dyn Chare<M>>)>,
    pe_of: Vec<u32>,
    started: bool,
    txs: Vec<ChSender<Item<M>>>,
    handles: Vec<JoinHandle<()>>,
    cd: Arc<CompletionDetector>,
    stats_rx: Option<Receiver<StatsReport>>,
    chares_rx: Option<Receiver<ChareCrate<M>>>,
}

impl<M: Message> ThreadEngine<M> {
    /// Create an engine for `cfg.n_pes` OS threads.
    pub fn new(cfg: RuntimeConfig) -> Self {
        ThreadEngine {
            cd: Arc::new(CompletionDetector::new(cfg.n_pes)),
            cfg,
            pending: Vec::new(),
            pe_of: Vec::new(),
            started: false,
            txs: Vec::new(),
            handles: Vec::new(),
            stats_rx: None,
            chares_rx: None,
        }
    }

    /// Register a chare (before the first phase).
    pub fn add_chare(&mut self, id: ChareId, pe: u32, chare: Box<dyn Chare<M>>) {
        assert!(!self.started, "cannot add chares after the first phase");
        assert!(pe < self.cfg.n_pes);
        let idx = id.0 as usize;
        if self.pe_of.len() <= idx {
            self.pe_of.resize(idx + 1, u32::MAX);
        }
        assert!(self.pe_of[idx] == u32::MAX, "duplicate chare id {idx}");
        self.pe_of[idx] = pe;
        self.pending.push((id, pe, chare));
    }

    fn start(&mut self) {
        let n = self.cfg.n_pes as usize;
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            self.txs.push(tx);
            rxs.push(rx);
        }
        let (stats_tx, stats_rx) = unbounded();
        let (chares_tx, chares_rx) = unbounded();
        self.stats_rx = Some(stats_rx);
        self.chares_rx = Some(chares_rx);
        let pe_of = Arc::new(std::mem::take(&mut self.pe_of));
        self.pe_of = pe_of.as_ref().clone();

        // Distribute pending chares per PE.
        let mut per_pe: Vec<ChareCrate<M>> = (0..n).map(|_| Vec::new()).collect();
        for (id, pe, chare) in self.pending.drain(..) {
            per_pe[pe as usize].push((id, chare));
        }
        let n_chares = pe_of.len();

        for (pe, chares) in per_pe.into_iter().enumerate() {
            let mut local_idx = vec![u32::MAX; n_chares];
            for (i, (id, _)) in chares.iter().enumerate() {
                local_idx[id.0 as usize] = i as u32;
            }
            let worker = Worker {
                pe: pe as u32,
                cfg: self.cfg,
                rx: rxs[pe].clone(),
                txs: self.txs.clone(),
                cd: self.cd.clone(),
                stats_tx: stats_tx.clone(),
                chares_tx: chares_tx.clone(),
                pe_of: pe_of.clone(),
                chares,
                local_idx,
                local_q: VecDeque::new(),
                agg: Aggregator::new(self.cfg.n_pes, self.cfg.aggregation),
                stats: PeStats::default(),
                reductions: ReductionSlots::default(),
                out: OutBuf { items: Vec::new() },
                grid: Grid2D::new(self.cfg.n_pes),
            };
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("chare-pe-{pe}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }
        self.started = true;
    }

    /// Run one phase to completion.
    pub fn run_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        if !self.started {
            self.start();
        }
        self.cd.reset();
        for tx in &self.txs {
            let _ = tx.send(Item::PhaseStart);
        }
        for (to, msg) in injections {
            let pe = self.pe_of[to.0 as usize];
            self.cd.produce(pe, 1);
            let _ = self.txs[pe as usize].send(Item::Direct(Envelope { to, msg }));
        }
        // Detection loop, with an optional wall-clock watchdog so a hung
        // phase in a conformance run fails with the detector's counters
        // instead of spinning until the CI timeout.
        let deadline = (self.cfg.watchdog_secs > 0).then(|| {
            // simlint: allow(R2) -- hang watchdog arming; never feeds simulation state
            std::time::Instant::now() + Duration::from_secs(self.cfg.watchdog_secs as u64)
        });
        loop {
            if self.cd.try_detect() {
                self.cd.mark_done();
                break;
            }
            if let Some(d) = deadline {
                assert!(
                    // simlint: allow(R2) -- hang watchdog check; aborts the run, never feeds results
                    std::time::Instant::now() < d,
                    "phase watchdog ({}s) expired before completion detection fired \
                     (produced {}, consumed {})",
                    self.cfg.watchdog_secs,
                    self.cd.total_produced(),
                    self.cd.total_consumed()
                );
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        // Collect per-PE stats.
        let rx = self.stats_rx.as_ref().unwrap();
        let mut per_pe = vec![PeStats::default(); self.cfg.n_pes as usize];
        let mut reductions = ReductionSlots::default();
        for _ in 0..self.cfg.n_pes {
            let (pe, stats, red) = rx.recv().expect("worker stats");
            per_pe[pe as usize] = stats;
            reductions.merge(&red);
        }
        PhaseStats { per_pe, reductions }
    }

    /// Stop the workers and collect all chares.
    pub fn into_chares(mut self) -> Vec<(ChareId, Box<dyn Chare<M>>)> {
        if !self.started {
            return self.pending.into_iter().map(|(id, _, c)| (id, c)).collect();
        }
        for tx in &self.txs {
            let _ = tx.send(Item::Shutdown);
        }
        let rx = self.chares_rx.take().unwrap();
        let mut all = Vec::new();
        for _ in 0..self.cfg.n_pes {
            all.extend(rx.recv().expect("worker chares"));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        all.sort_by_key(|(id, _)| *id);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;

    struct Relay {
        next: ChareId,
        seen: u64,
    }

    #[derive(Debug)]
    struct Token(u64);
    impl Message for Token {}

    impl Chare<Token> for Relay {
        fn receive(&mut self, msg: Token, ctx: &mut Ctx<'_, Token>) {
            self.seen += 1;
            ctx.contribute(0, 1);
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn ring(n_chares: u32, n_pes: u32) -> ThreadEngine<Token> {
        let mut eng = ThreadEngine::new(RuntimeConfig::threaded(n_pes));
        for i in 0..n_chares {
            eng.add_chare(
                ChareId(i),
                i % n_pes,
                Box::new(Relay {
                    next: ChareId((i + 1) % n_chares),
                    seen: 0,
                }),
            );
        }
        eng
    }

    #[test]
    fn token_ring_across_threads() {
        let mut eng = ring(8, 4);
        let stats = eng.run_phase(vec![(ChareId(0), Token(100))]);
        assert_eq!(stats.reduction(0), 101);
        assert_eq!(stats.totals().processed, 101);
        let chares = eng.into_chares();
        assert_eq!(chares.len(), 8);
    }

    #[test]
    fn repeated_phases() {
        let mut eng = ring(6, 3);
        for round in 1..=5u64 {
            let stats = eng.run_phase(vec![(ChareId(0), Token(10 * round))]);
            assert_eq!(stats.reduction(0), 10 * round + 1, "round {round}");
        }
        eng.into_chares();
    }

    #[test]
    fn fan_out_fan_in() {
        // Chare 0 broadcasts to all others, which reply; totals must match.
        struct Hub {
            n: u32,
        }
        struct Leaf;
        #[derive(Debug)]
        enum M2 {
            Go,
            Ping,
            Pong,
        }
        impl Message for M2 {}
        impl Chare<M2> for Hub {
            fn receive(&mut self, msg: M2, ctx: &mut Ctx<'_, M2>) {
                match msg {
                    M2::Go => {
                        for i in 1..=self.n {
                            ctx.send(ChareId(i), M2::Ping);
                        }
                    }
                    M2::Pong => ctx.contribute(1, 1),
                    M2::Ping => {}
                }
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        impl Chare<M2> for Leaf {
            fn receive(&mut self, msg: M2, ctx: &mut Ctx<'_, M2>) {
                if matches!(msg, M2::Ping) {
                    ctx.send(ChareId(0), M2::Pong);
                }
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut eng = ThreadEngine::new(RuntimeConfig::threaded(4));
        let n = 100u32;
        eng.add_chare(ChareId(0), 0, Box::new(Hub { n }));
        for i in 1..=n {
            eng.add_chare(ChareId(i), i % 4, Box::new(Leaf));
        }
        let stats = eng.run_phase(vec![(ChareId(0), M2::Go)]);
        assert_eq!(stats.reduction(1), n as u64);
        eng.into_chares();
    }

    #[test]
    fn empty_phase_terminates() {
        let mut eng = ring(4, 2);
        let stats = eng.run_phase(vec![]);
        assert_eq!(stats.totals().processed, 0);
        eng.into_chares();
    }

    #[test]
    fn shutdown_before_start_returns_chares() {
        let eng = ring(5, 2);
        assert_eq!(eng.into_chares().len(), 5);
    }
}
