//! Per-PE and per-phase statistics.
//!
//! These counters are the bridge to the `scale-model` crate: the paper's
//! communication optimizations (§IV) change *these numbers* — remote vs
//! local message counts, network messages after aggregation, bytes, busy
//! time — and the performance model turns them into projected time on a
//! Blue-Waters-like machine.

/// Number of sum-reduction slots available to applications.
pub const REDUCTION_SLOTS: usize = 16;

/// Per-phase sum reductions (u64 addition — the only reduction EpiSimdemics
/// needs for its global counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReductionSlots {
    slots: [u64; REDUCTION_SLOTS],
}

impl ReductionSlots {
    /// Number of slots.
    pub const N: usize = REDUCTION_SLOTS;

    /// Add into a slot.
    #[inline]
    pub fn add(&mut self, slot: usize, value: u64) {
        self.slots[slot] += value;
    }

    /// Read a slot.
    #[inline]
    pub fn get(&self, slot: usize) -> u64 {
        self.slots[slot]
    }

    /// Merge another set of slots into this one.
    pub fn merge(&mut self, other: &ReductionSlots) {
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            *a += b;
        }
    }

    /// Reset all slots to zero.
    pub fn clear(&mut self) {
        self.slots = [0; REDUCTION_SLOTS];
    }
}

/// Counters for one PE over one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Messages this PE's chares sent to chares on the same PE.
    pub sent_self: u64,
    /// Messages sent to other PEs within the same SMP process.
    pub sent_intra: u64,
    /// Messages sent to PEs in other processes ("network" messages before
    /// aggregation).
    pub sent_remote: u64,
    /// Network packets actually emitted after aggregation (buffer flushes).
    pub network_packets: u64,
    /// Bytes carried by remote messages.
    pub remote_bytes: u64,
    /// Envelopes relayed on behalf of other PEs (TRAM intermediate hops).
    pub forwarded: u64,
    /// Messages processed (consumed) by this PE.
    pub processed: u64,
    /// Nanoseconds spent inside `Chare::receive`.
    pub busy_ns: u64,
    /// Packets whose first transmission was dropped by fault injection
    /// (counted at the sender; nonzero only under the DST engine).
    pub faults_dropped: u64,
    /// Duplicate packet arrivals suppressed by the transport's take-once
    /// delivery (counted at the receiver; DST engine only).
    pub faults_dup_suppressed: u64,
    /// Messages irrecoverably lost — nonzero only under a non-benign fault
    /// plan (drop without redelivery); any benign run must end with zero.
    pub lost: u64,
    /// Wire frames sent by the process's comm thread (net engine only;
    /// attributed to the process's first PE).
    pub wire_frames_sent: u64,
    /// Wire frames received by the comm thread (net engine only).
    pub wire_frames_recv: u64,
    /// Bytes written to sockets, including frame headers (net engine only).
    pub wire_bytes_sent: u64,
    /// Bytes read from sockets, including frame headers (net engine only).
    pub wire_bytes_recv: u64,
    /// Cross-process batches flushed because a lane reached
    /// `AggregationConfig::max_batch` (net engine only).
    pub wire_flush_batch: u64,
    /// Cross-process batches flushed because the sending process went idle
    /// — the §IV-C idle flush, observed on the wire (net engine only).
    pub wire_flush_idle: u64,
    /// Envelopes carried by batch-full flushes (net engine only). Together
    /// with `wire_flush_batch` this gives the *fill* of full frames — the
    /// number the batch-sweep dead-zone regression test pins.
    pub wire_msgs_batch: u64,
    /// Envelopes carried by idle flushes (net engine only).
    pub wire_msgs_idle: u64,
    /// Socket writes that carried ≥2 frames in one vectored `writev`-style
    /// flush (net engine, TCP path only).
    pub wire_coalesced_flushes: u64,
    /// BATCH frames pushed directly into shared-memory rings, bypassing the
    /// comm thread and the socket (net engine, shm transport only).
    pub shm_frames_sent: u64,
    /// Times a worker's compute thread parked on its doorbell futex instead
    /// of spinning while idle (net engine, shm transport only).
    pub shm_parks: u64,
    /// The adaptive aggregation batch size in force at the end of the phase
    /// (net engine; equals the static `max_batch` when adaptation is off).
    /// Merged across PEs as a max, not a sum.
    pub agg_batch: u64,
    /// Cross-process batches flushed eagerly because the adaptive batch
    /// controller converged to its minimum size — the latency-bound
    /// regime, where waiting for a batch to fill costs more than a flush
    /// (net engine, adaptive aggregation only).
    pub wire_flush_eager: u64,
    /// Envelopes carried by eager flushes (net engine only).
    pub wire_msgs_eager: u64,
    /// Recovery snapshots this process has committed to the epoch store so
    /// far in the run (cumulative level, attributed to the process's first
    /// PE at end of phase; net engine + resilient driver only).
    pub recovery_checkpoints: u64,
    /// Times this process's state was rebuilt from a committed epoch after
    /// a failure (cumulative level, same attribution).
    pub recovery_restores: u64,
}

impl PeStats {
    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent_self + self.sent_intra + self.sent_remote
    }

    /// Merge (for aggregate views).
    pub fn merge(&mut self, o: &PeStats) {
        self.sent_self += o.sent_self;
        self.sent_intra += o.sent_intra;
        self.sent_remote += o.sent_remote;
        self.network_packets += o.network_packets;
        self.remote_bytes += o.remote_bytes;
        self.forwarded += o.forwarded;
        self.processed += o.processed;
        self.busy_ns += o.busy_ns;
        self.faults_dropped += o.faults_dropped;
        self.faults_dup_suppressed += o.faults_dup_suppressed;
        self.lost += o.lost;
        self.wire_frames_sent += o.wire_frames_sent;
        self.wire_frames_recv += o.wire_frames_recv;
        self.wire_bytes_sent += o.wire_bytes_sent;
        self.wire_bytes_recv += o.wire_bytes_recv;
        self.wire_flush_batch += o.wire_flush_batch;
        self.wire_flush_idle += o.wire_flush_idle;
        self.wire_msgs_batch += o.wire_msgs_batch;
        self.wire_msgs_idle += o.wire_msgs_idle;
        self.wire_coalesced_flushes += o.wire_coalesced_flushes;
        self.shm_frames_sent += o.shm_frames_sent;
        self.shm_parks += o.shm_parks;
        self.wire_flush_eager += o.wire_flush_eager;
        self.wire_msgs_eager += o.wire_msgs_eager;
        self.recovery_checkpoints += o.recovery_checkpoints;
        self.recovery_restores += o.recovery_restores;
        // A batch size is a level, not a flow: the aggregate view reports
        // the largest batch any PE converged to.
        self.agg_batch = self.agg_batch.max(o.agg_batch);
    }
}

/// The result of one phase: per-PE counters plus the reduction totals.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// One entry per PE.
    pub per_pe: Vec<PeStats>,
    /// Summed reduction slots across all PEs.
    pub reductions: ReductionSlots,
}

impl PhaseStats {
    /// Aggregate counters over all PEs.
    pub fn totals(&self) -> PeStats {
        let mut t = PeStats::default();
        for pe in &self.per_pe {
            t.merge(pe);
        }
        t
    }

    /// The busiest PE's compute time in nanoseconds — the quantity that
    /// bounds the phase's parallel time (§III-B's `Lmax` measured live).
    pub fn max_busy_ns(&self) -> u64 {
        self.per_pe.iter().map(|p| p.busy_ns).max().unwrap_or(0)
    }

    /// Read one reduction slot.
    pub fn reduction(&self, slot: usize) -> u64 {
        self.reductions.get(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_slots_accumulate_and_merge() {
        let mut a = ReductionSlots::default();
        a.add(0, 3);
        a.add(7, 2);
        let mut b = ReductionSlots::default();
        b.add(0, 4);
        a.merge(&b);
        assert_eq!(a.get(0), 7);
        assert_eq!(a.get(7), 2);
        a.clear();
        assert_eq!(a.get(0), 0);
    }

    #[test]
    fn pe_stats_totals() {
        let s = PeStats {
            sent_self: 1,
            sent_intra: 2,
            sent_remote: 3,
            ..Default::default()
        };
        assert_eq!(s.sent_total(), 6);
    }

    #[test]
    fn agg_batch_merges_as_max_while_counters_sum() {
        let mut a = PeStats {
            shm_frames_sent: 2,
            wire_coalesced_flushes: 1,
            agg_batch: 8,
            ..Default::default()
        };
        let b = PeStats {
            shm_frames_sent: 3,
            wire_coalesced_flushes: 4,
            agg_batch: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.shm_frames_sent, 5);
        assert_eq!(a.wire_coalesced_flushes, 5);
        assert_eq!(a.agg_batch, 8, "batch size is a level, merged as max");
    }

    #[test]
    fn phase_stats_aggregate() {
        let mut ps = PhaseStats::default();
        ps.per_pe.push(PeStats {
            busy_ns: 100,
            processed: 5,
            ..Default::default()
        });
        ps.per_pe.push(PeStats {
            busy_ns: 300,
            processed: 7,
            ..Default::default()
        });
        assert_eq!(ps.max_busy_ns(), 300);
        assert_eq!(ps.totals().processed, 12);
    }
}
