//! The engine-agnostic runtime facade.

use crate::chare::{Chare, ChareId, Message};
use crate::config::{ExecMode, RuntimeConfig};
use crate::net::NetEngine;
use crate::seq::SeqEngine;
use crate::stats::PhaseStats;
use crate::threads::ThreadEngine;
use crate::vt::VtEngine;

enum Engine<M: Message> {
    Seq(SeqEngine<M>),
    Threads(ThreadEngine<M>),
    Vt(Box<VtEngine<M>>),
    Net(Box<NetEngine<M>>),
}

/// A message-driven runtime hosting one chare array across `n_pes`
/// processing elements.
///
/// ```
/// use chare_rt::{Chare, ChareId, Ctx, Message, Runtime, RuntimeConfig};
///
/// #[derive(Debug)]
/// struct Ping(u32);
/// impl Message for Ping {}
///
/// struct Counter(u64);
/// impl Chare<Ping> for Counter {
///     fn receive(&mut self, msg: Ping, ctx: &mut Ctx<'_, Ping>) {
///         self.0 += 1;
///         ctx.contribute(0, 1);
///         if msg.0 > 0 {
///             ctx.send(ctx.self_id(), Ping(msg.0 - 1));
///         }
///     }
///
///     fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> { self }
/// }
///
/// let mut rt = Runtime::new(RuntimeConfig::sequential(2));
/// rt.add_chare(ChareId(0), 0, Box::new(Counter(0)));
/// let stats = rt.run_phase(vec![(ChareId(0), Ping(9))]);
/// assert_eq!(stats.reduction(0), 10);
/// ```
pub struct Runtime<M: Message> {
    engine: Engine<M>,
    cfg: RuntimeConfig,
}

impl<M: Message> Runtime<M> {
    /// Build a runtime.
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.n_pes >= 1, "need at least one PE");
        let engine = match cfg.mode {
            ExecMode::Sequential => Engine::Seq(SeqEngine::new(cfg)),
            ExecMode::Threads => Engine::Threads(ThreadEngine::new(cfg)),
            ExecMode::VirtualTime => Engine::Vt(Box::new(VtEngine::new(cfg))),
            ExecMode::Net => Engine::Net(Box::new(NetEngine::new(cfg))),
        };
        Runtime { engine, cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Register a chare on a PE. All chares must be added before the first
    /// phase runs.
    pub fn add_chare(&mut self, id: ChareId, pe: u32, chare: Box<dyn Chare<M>>) {
        match &mut self.engine {
            Engine::Seq(e) => e.add_chare(id, pe, chare),
            Engine::Threads(e) => e.add_chare(id, pe, chare),
            Engine::Vt(e) => e.add_chare(id, pe, chare),
            Engine::Net(e) => e.add_chare(id, pe, chare),
        }
    }

    /// Inject the given messages and run until completion detection fires
    /// (no message awaiting processing or in transit).
    pub fn run_phase(&mut self, injections: Vec<(ChareId, M)>) -> PhaseStats {
        match &mut self.engine {
            Engine::Seq(e) => e.run_phase(injections),
            Engine::Threads(e) => e.run_phase(injections),
            Engine::Vt(e) => e.run_phase(injections),
            Engine::Net(e) => e.run_phase(injections),
        }
    }

    /// Net engine, root process only: tear down (broadcast SHUTDOWN, stop
    /// the comm thread) and return every worker's exit code indexed
    /// `rank - 1`. Empty for every other engine/role. Fault-injection
    /// tests call this after catching a transport panic to assert that
    /// survivors exited cleanly ([`crate::net::TRANSPORT_EXIT`]) rather
    /// than panicking.
    pub fn reap_workers(&mut self) -> Vec<Option<i32>> {
        match &mut self.engine {
            Engine::Net(e) => e.reap_workers(),
            _ => Vec::new(),
        }
    }

    /// Net engine: this process's rank (0 for the root and standalone
    /// runs). 0 for every other engine.
    pub fn net_rank(&self) -> u32 {
        match &self.engine {
            Engine::Net(e) => e.net_rank(),
            _ => 0,
        }
    }

    /// Serialize every locally-owned chare that opts into checkpointing
    /// ([`Chare::snapshot`] returning `Some`), as `(chare id, bytes)`
    /// pairs. Only meaningful between phases, when no messages are in
    /// flight. Supported on the net and sequential engines (the ones the
    /// resilient driver runs on); empty elsewhere.
    pub fn snapshot_local(&self) -> Vec<(u32, Vec<u8>)> {
        match &self.engine {
            Engine::Net(e) => e.snapshot_chares(),
            Engine::Seq(e) => e.snapshot_chares(),
            _ => Vec::new(),
        }
    }

    /// Net engine: record that a recovery snapshot was committed (feeds
    /// the `recovery_checkpoints` stat). No-op elsewhere.
    pub fn note_checkpoint(&mut self) {
        if let Engine::Net(e) = &mut self.engine {
            e.note_checkpoint();
        }
    }

    /// Net engine: record that state was rebuilt from a committed epoch
    /// (feeds the `recovery_restores` stat). No-op elsewhere.
    pub fn note_restore(&mut self) {
        if let Engine::Net(e) = &mut self.engine {
            e.note_restore();
        }
    }

    /// Tear down and return all chares (sorted by id).
    pub fn into_chares(self) -> Vec<(ChareId, Box<dyn Chare<M>>)> {
        match self.engine {
            Engine::Seq(e) => {
                let mut v = e.into_chares();
                v.sort_by_key(|(id, _)| *id);
                v
            }
            Engine::Threads(e) => e.into_chares(),
            Engine::Vt(e) => e.into_chares(),
            Engine::Net(e) => {
                let mut v = e.into_chares();
                v.sort_by_key(|(id, _)| *id);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chare::Ctx;

    #[derive(Debug)]
    struct Hop {
        remaining: u32,
        payload: u64,
    }
    impl Message for Hop {}

    /// Accumulates payloads and forwards around a ring.
    struct Acc {
        next: ChareId,
        sum: u64,
    }
    impl Chare<Hop> for Acc {
        fn receive(&mut self, msg: Hop, ctx: &mut Ctx<'_, Hop>) {
            self.sum += msg.payload;
            ctx.contribute(0, msg.payload);
            if msg.remaining > 0 {
                ctx.send(
                    self.next,
                    Hop {
                        remaining: msg.remaining - 1,
                        payload: msg.payload + 1,
                    },
                );
            }
        }

        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn build(cfg: RuntimeConfig) -> Runtime<Hop> {
        let mut rt = Runtime::new(cfg);
        for i in 0..10u32 {
            rt.add_chare(
                ChareId(i),
                i % cfg.n_pes,
                Box::new(Acc {
                    next: ChareId((i + 1) % 10),
                    sum: 0,
                }),
            );
        }
        rt
    }

    fn run_and_total(cfg: RuntimeConfig) -> (u64, u64) {
        let mut rt = build(cfg);
        let stats = rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 50,
                payload: 1,
            },
        )]);
        (stats.reduction(0), stats.totals().processed)
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let (sum_seq, n_seq) = run_and_total(RuntimeConfig::sequential(4));
        let (sum_thr, n_thr) = run_and_total(RuntimeConfig::threaded(4));
        assert_eq!(sum_seq, sum_thr);
        assert_eq!(n_seq, n_thr);
        // Payload 1..=51 summed = 51·52/2 − 0 = 1326.
        assert_eq!(sum_seq, 1326);
        assert_eq!(n_seq, 51);
    }

    #[test]
    fn agree_across_pe_counts() {
        let baseline = run_and_total(RuntimeConfig::sequential(1));
        for pes in [2u32, 3, 5, 10] {
            assert_eq!(run_and_total(RuntimeConfig::sequential(pes)), baseline);
        }
        for pes in [2u32, 4] {
            assert_eq!(run_and_total(RuntimeConfig::threaded(pes)), baseline);
        }
    }

    #[test]
    fn no_opt_config_same_results_different_packets() {
        let opt = RuntimeConfig::sequential(4);
        let noopt = RuntimeConfig::sequential(4).no_opt();
        let mut rt_o = build(opt);
        let mut rt_n = build(noopt);
        let inj = |rt: &mut Runtime<Hop>| {
            rt.run_phase(vec![(
                ChareId(0),
                Hop {
                    remaining: 200,
                    payload: 1,
                },
            )])
        };
        let so = inj(&mut rt_o);
        let sn = inj(&mut rt_n);
        assert_eq!(so.reduction(0), sn.reduction(0));
        // Without aggregation every remote message is its own packet.
        assert!(sn.totals().network_packets >= so.totals().network_packets);
        assert_eq!(sn.totals().network_packets, sn.totals().sent_remote);
    }

    #[test]
    fn tram_routing_preserves_results() {
        // 16 PEs in a 4×4 TRAM grid, all-to-all ring traffic: identical
        // reductions with and without topological routing, under both
        // engines.
        let mut base_cfg = RuntimeConfig::sequential(16);
        base_cfg.smp.pes_per_process = 1;
        let mut tram_cfg = base_cfg;
        tram_cfg.aggregation.tram_2d = true;
        let runs: Vec<(u64, u64, u64)> = [base_cfg, tram_cfg]
            .into_iter()
            .map(|cfg| {
                let mut rt = build(cfg);
                let stats = rt.run_phase(vec![(
                    ChareId(0),
                    Hop {
                        remaining: 500,
                        payload: 1,
                    },
                )]);
                let t = stats.totals();
                (stats.reduction(0), t.processed, t.forwarded)
            })
            .collect();
        assert_eq!(runs[0].0, runs[1].0, "TRAM must not change results");
        assert_eq!(runs[0].1, runs[1].1);
        assert_eq!(runs[0].2, 0, "no forwarding without TRAM");
        // The ring hops between PEs 4 apart in a 4-column grid are
        // same-column (direct), so forwarding may legitimately be rare;
        // just assert the counter is consistent.
        let mut thr_cfg = RuntimeConfig::threaded(4);
        thr_cfg.smp.pes_per_process = 1;
        thr_cfg.aggregation.tram_2d = true;
        let mut rt = build(thr_cfg);
        let stats = rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 500,
                payload: 1,
            },
        )]);
        assert_eq!(stats.reduction(0), runs[0].0);
        rt.into_chares();
    }

    #[test]
    fn tram_forwards_on_diagonal_traffic() {
        // Chare 0 on PE 0 sprays chare 1 on PE 15 of a 4×4 grid — a
        // diagonal route that must take two hops via PE 3.
        struct Spray(u32);
        impl Chare<Hop> for Spray {
            fn receive(&mut self, _m: Hop, ctx: &mut Ctx<'_, Hop>) {
                for _ in 0..self.0 {
                    ctx.send(
                        ChareId(1),
                        Hop {
                            remaining: 0,
                            payload: 1,
                        },
                    );
                }
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        struct Count(u64);
        impl Chare<Hop> for Count {
            fn receive(&mut self, _m: Hop, ctx: &mut Ctx<'_, Hop>) {
                self.0 += 1;
                ctx.contribute(1, 1);
            }

            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut cfg = RuntimeConfig::sequential(16);
        cfg.smp.pes_per_process = 1;
        cfg.aggregation.tram_2d = true;
        let mut rt: Runtime<Hop> = Runtime::new(cfg);
        rt.add_chare(ChareId(0), 0, Box::new(Spray(100)));
        rt.add_chare(ChareId(1), 15, Box::new(Count(0)));
        let stats = rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 0,
                payload: 0,
            },
        )]);
        assert_eq!(stats.reduction(1), 100, "all messages delivered");
        assert_eq!(stats.per_pe[3].forwarded, 100, "PE 3 relays the diagonal");
    }

    #[test]
    fn chares_survive_and_return() {
        let mut rt = build(RuntimeConfig::threaded(3));
        rt.run_phase(vec![(
            ChareId(0),
            Hop {
                remaining: 9,
                payload: 1,
            },
        )]);
        let chares = rt.into_chares();
        assert_eq!(chares.len(), 10);
        assert_eq!(chares[3].0, ChareId(3));
    }
}
