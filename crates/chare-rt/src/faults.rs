//! Deterministic fault injection for the virtual-time scheduler.
//!
//! Charm++-family codes validate their communication layer by proving the
//! application outcome is invariant under message delivery timing: the
//! runtime promises exactly-once delivery and phase completion, and nothing
//! else — not ordering, not latency, not which aggregation lane flushes
//! first. This module supplies the adversary for that contract: a
//! [`FaultPlan`] replayable from a `u64` seed that perturbs the
//! [`crate::vt::VtEngine`] transport with
//!
//! * **delay / reordering** — extra per-packet latency, which reorders
//!   deliveries across aggregation lanes and TRAM hops,
//! * **duplicate delivery** — a packet arrives twice; the transport's
//!   take-once slab must suppress the second copy,
//! * **bounded drop with redelivery** — the first attempt is lost on the
//!   wire and a retransmission lands later (observationally an extreme
//!   delay, but it exercises the loss-accounting path),
//! * **drop without redelivery** — the negative control: a *non-conformant*
//!   transport that the conformance suite must catch,
//! * **PE stall/slowdown** — a destination PE stops draining for a window
//!   of virtual time, which is exactly the schedule that would expose an
//!   early-firing completion detector.
//!
//! The hook is generic ([`FaultHook`]) with a zero-sized no-op
//! implementation ([`NoFaults`]): engines instantiated with `NoFaults`
//! monomorphize every hook call to nothing, so the fault machinery costs
//! zero in fault-free builds, and the production engines
//! ([`crate::seq::SeqEngine`], [`crate::threads::ThreadEngine`]) never
//! reference it at all.

/// SplitMix64: a tiny, high-quality, seedable generator. Every fault
/// decision derives from this stream, so a `(seed, plan)` pair replays the
/// exact same perturbed schedule.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        FaultRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (`0` when `n == 0`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli draw with probability `permille / 1000`.
    #[inline]
    pub fn chance(&mut self, permille: u16) -> bool {
        match permille {
            0 => false,
            p if p >= 1000 => true,
            p => self.below(1000) < p as u64,
        }
    }
}

/// A seeded, replayable fault schedule. All fields are plain integers so
/// the plan stays `Copy + Eq` and can ride inside
/// [`crate::config::RuntimeConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault decision stream (independent of the application
    /// seed — the same simulation can be replayed under many schedules).
    pub seed: u64,
    /// Chance (‰) that a packet picks up extra latency.
    pub delay_permille: u16,
    /// Maximum extra latency, in virtual ticks.
    pub max_delay: u32,
    /// Chance (‰) that a packet is delivered twice.
    pub dup_permille: u16,
    /// Chance (‰) that a packet's first transmission is dropped.
    pub drop_permille: u16,
    /// Whether dropped packets are retransmitted. `false` turns the plan
    /// into the negative control: messages are irrecoverably lost and the
    /// conformance suite must notice.
    pub redeliver: bool,
    /// Chance (‰) that a packet arrival stalls its destination PE.
    pub stall_permille: u16,
    /// Length of an injected stall, in virtual ticks.
    pub stall_ticks: u32,
    /// **Process-level fault** (net engine only): rank of the worker
    /// process that exits abruptly mid-protocol. `u32::MAX` = off. Unlike
    /// the message-level knobs above (virtual-time only), process faults
    /// are honoured by [`crate::net::NetEngine`] and exercised by the
    /// crash-recovery conformance suite.
    pub proc_kill_rank: u32,
    /// 1-based phase at which `proc_kill_rank` dies.
    pub proc_kill_phase: u32,
    /// Process-level fault: rank of the worker that goes silent — both its
    /// compute and comm threads sleep with every socket left open, the
    /// SIGSTOP-equivalent a heartbeat detector must classify as *stalled*
    /// rather than crashed. `u32::MAX` = off.
    pub proc_stall_rank: u32,
    /// 1-based phase at which `proc_stall_rank` goes silent.
    pub proc_stall_phase: u32,
    /// Duration of the injected process stall, in milliseconds.
    pub proc_stall_ms: u32,
}

impl FaultPlan {
    /// No faults: the pure virtual-time scheduler (still a distinct
    /// interleaving from the round-robin sequential engine).
    pub const fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_permille: 0,
            max_delay: 0,
            dup_permille: 0,
            drop_permille: 0,
            redeliver: true,
            stall_permille: 0,
            stall_ticks: 0,
            proc_kill_rank: u32::MAX,
            proc_kill_phase: 0,
            proc_stall_rank: u32::MAX,
            proc_stall_phase: 0,
            proc_stall_ms: 0,
        }
    }

    /// Process-level kill fault: worker `rank` exits abruptly when it
    /// enters `phase` (net engine; the crash side of the chaos matrix).
    pub const fn proc_kill(seed: u64, rank: u32, phase: u32) -> Self {
        FaultPlan {
            proc_kill_rank: rank,
            proc_kill_phase: phase,
            ..Self::none(seed)
        }
    }

    /// Process-level stall fault: worker `rank` goes completely silent for
    /// `ms` milliseconds starting at `phase`, sockets left open (net
    /// engine; the stall side of the chaos matrix).
    pub const fn proc_stall(seed: u64, rank: u32, phase: u32, ms: u32) -> Self {
        FaultPlan {
            proc_stall_rank: rank,
            proc_stall_phase: phase,
            proc_stall_ms: ms,
            ..Self::none(seed)
        }
    }

    /// Whether the plan injects any process-level fault.
    pub const fn has_proc_faults(&self) -> bool {
        self.proc_kill_rank != u32::MAX || self.proc_stall_rank != u32::MAX
    }

    /// This plan with every process-level fault removed — what a recovery
    /// driver applies on retry attempts, so a fault that already fired is
    /// not re-injected into the respawned worker set.
    pub const fn without_proc_faults(mut self) -> Self {
        self.proc_kill_rank = u32::MAX;
        self.proc_kill_phase = 0;
        self.proc_stall_rank = u32::MAX;
        self.proc_stall_phase = 0;
        self.proc_stall_ms = 0;
        self
    }

    /// Heavy random latency: reorders deliveries across aggregation lanes.
    pub const fn reorder(seed: u64) -> Self {
        FaultPlan {
            delay_permille: 1000,
            max_delay: 2_000,
            ..Self::none(seed)
        }
    }

    /// Frequent duplicate deliveries (plus mild jitter so the duplicate
    /// sometimes arrives *before* the original).
    pub const fn duplicates(seed: u64) -> Self {
        FaultPlan {
            dup_permille: 300,
            delay_permille: 500,
            max_delay: 200,
            ..Self::none(seed)
        }
    }

    /// Frequent first-transmission drops, always redelivered.
    pub const fn drops(seed: u64) -> Self {
        FaultPlan {
            drop_permille: 300,
            redeliver: true,
            ..Self::none(seed)
        }
    }

    /// Destination-PE stalls: long windows where a PE drains nothing.
    pub const fn stalls(seed: u64) -> Self {
        FaultPlan {
            stall_permille: 50,
            stall_ticks: 5_000,
            ..Self::none(seed)
        }
    }

    /// Everything at once.
    pub const fn chaos(seed: u64) -> Self {
        FaultPlan {
            delay_permille: 800,
            max_delay: 1_000,
            dup_permille: 150,
            drop_permille: 150,
            redeliver: true,
            stall_permille: 30,
            stall_ticks: 2_000,
            ..Self::none(seed)
        }
    }

    /// The negative control: every packet's first (and only) transmission
    /// is dropped and never redelivered. A conformance suite that does not
    /// fail under this plan is not testing anything.
    pub const fn lossy(seed: u64) -> Self {
        FaultPlan {
            drop_permille: 1000,
            redeliver: false,
            ..Self::none(seed)
        }
    }

    /// Whether the plan preserves exactly-once delivery (every benign plan
    /// does; only drop-without-redelivery violates it).
    pub const fn is_benign(&self) -> bool {
        self.drop_permille == 0 || self.redeliver
    }

    /// The benign plan grid the conformance suites sweep.
    pub const GRID: [FaultPlan; 6] = [
        FaultPlan::none(0),
        FaultPlan::reorder(0),
        FaultPlan::duplicates(0),
        FaultPlan::drops(0),
        FaultPlan::stalls(0),
        FaultPlan::chaos(0),
    ];

    /// This plan re-seeded (plans in [`Self::GRID`] carry seed 0).
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What the fault layer decided for one packet transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketFate {
    /// Extra latency in virtual ticks.
    pub extra_delay: u64,
    /// Deliver a second copy (at an independently jittered time).
    pub duplicate: bool,
    /// Lose the first transmission.
    pub drop: bool,
    /// If dropped, retransmit (arriving after a retransmission timeout).
    pub redeliver: bool,
    /// Stall the destination PE for this many ticks upon scheduling.
    pub stall_ticks: u64,
}

/// The per-packet decision hook consulted by the virtual-time scheduler's
/// send path. Implementations must be deterministic functions of their own
/// state so a seed replays the schedule.
pub trait FaultHook {
    /// Decide the fate of one packet from `src` to `dst`.
    fn packet_fate(&mut self, src_pe: u32, dst_pe: u32) -> PacketFate;
}

/// The zero-cost hook: no faults, no state, every call inlines to a
/// constant. An engine instantiated with `NoFaults` carries no fault
/// machinery in its compiled send/receive path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    #[inline(always)]
    fn packet_fate(&mut self, _src_pe: u32, _dst_pe: u32) -> PacketFate {
        PacketFate::default()
    }
}

/// A [`FaultHook`] driven by a [`FaultPlan`] and its seeded stream.
#[derive(Debug, Clone)]
pub struct PlanFaults {
    plan: FaultPlan,
    rng: FaultRng,
}

impl PlanFaults {
    /// Hook replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        PlanFaults {
            rng: FaultRng::new(plan.seed),
            plan,
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultHook for PlanFaults {
    fn packet_fate(&mut self, _src_pe: u32, _dst_pe: u32) -> PacketFate {
        let p = &self.plan;
        let mut fate = PacketFate {
            redeliver: p.redeliver,
            ..PacketFate::default()
        };
        if p.delay_permille > 0 && self.rng.chance(p.delay_permille) {
            fate.extra_delay = self.rng.below(p.max_delay as u64 + 1);
        }
        if p.dup_permille > 0 && self.rng.chance(p.dup_permille) {
            fate.duplicate = true;
        }
        if p.drop_permille > 0 && self.rng.chance(p.drop_permille) {
            fate.drop = true;
        }
        if p.stall_permille > 0 && self.rng.chance(p.stall_permille) {
            fate.stall_ticks = p.stall_ticks as u64;
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = FaultRng::new(1);
        assert!(!(0..1000).any(|_| r.chance(0)));
        assert!((0..1000).all(|_| r.chance(1000)));
        // A mid probability hits roughly its rate.
        let hits = (0..10_000).filter(|_| r.chance(250)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn plan_replays_identically() {
        let mut a = PlanFaults::new(FaultPlan::chaos(42));
        let mut b = PlanFaults::new(FaultPlan::chaos(42));
        for i in 0..500u32 {
            assert_eq!(a.packet_fate(i % 4, i % 7), b.packet_fate(i % 4, i % 7));
        }
    }

    #[test]
    fn grid_plans_are_benign_and_lossy_is_not() {
        for plan in FaultPlan::GRID {
            assert!(plan.is_benign(), "{plan:?}");
        }
        assert!(!FaultPlan::lossy(1).is_benign());
    }

    #[test]
    fn no_faults_is_inert() {
        let fate = NoFaults.packet_fate(0, 1);
        assert_eq!(fate, PacketFate::default());
        assert_eq!(std::mem::size_of::<NoFaults>(), 0);
    }

    #[test]
    fn with_seed_reseeds() {
        let p = FaultPlan::reorder(0).with_seed(99);
        assert_eq!(p.seed, 99);
        assert_eq!(p.delay_permille, 1000);
    }

    #[test]
    fn proc_faults_set_and_strip() {
        assert!(!FaultPlan::none(0).has_proc_faults());
        let kill = FaultPlan::proc_kill(1, 2, 7);
        assert!(kill.has_proc_faults());
        assert!(
            kill.is_benign(),
            "process faults are recoverable, not lossy"
        );
        let stall = FaultPlan::proc_stall(1, 1, 4, 500);
        assert!(stall.has_proc_faults());
        assert_eq!(stall.proc_stall_ms, 500);
        assert_eq!(kill.without_proc_faults(), FaultPlan::none(1));
        assert_eq!(stall.without_proc_faults(), FaultPlan::none(1));
        // The message-level grid stays process-fault free.
        for plan in FaultPlan::GRID {
            assert!(!plan.has_proc_faults());
        }
    }
}
