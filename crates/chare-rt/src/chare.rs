//! The chare abstraction and the context handed to entry methods.

use crate::stats::ReductionSlots;

/// A chare's dense global identifier within the runtime's single chare
/// array. (EpiSimdemics uses two logical arrays — PersonManagers and
/// LocationManagers — which the application multiplexes onto one id space.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChareId(pub u32);

/// Application message. `size_bytes` feeds the bandwidth accounting; the
/// default charges the in-memory size, which applications with heap payloads
/// should override.
///
/// The networked engine ([`crate::net`]) additionally needs a byte codec:
/// `wire_encode`/`wire_decode` serialize the message into the little-endian
/// payload of a BATCH frame. The defaults panic, so in-process engines work
/// without a codec and the net engine fails loudly on a type that lacks one.
pub trait Message: Send + 'static {
    /// Wire size estimate in bytes.
    fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Serialize for cross-process transport (little-endian, via the
    /// `bytes` shim). Required only by [`crate::config::ExecMode::Net`].
    fn wire_encode(&self, _out: &mut bytes::BytesMut) {
        panic!(
            "{} has no wire codec; implement Message::wire_encode/wire_decode to use the net engine",
            std::any::type_name::<Self>()
        );
    }

    /// Deserialize one message, advancing `buf` past it. Returns `None` on
    /// a malformed payload (the transport treats that as fatal).
    fn wire_decode(_buf: &mut &[u8]) -> Option<Self>
    where
        Self: Sized,
    {
        panic!(
            "{} has no wire codec; implement Message::wire_encode/wire_decode to use the net engine",
            std::any::type_name::<Self>()
        );
    }
}

/// An application object driven entirely by messages (a Charm++ chare).
pub trait Chare<M: Message>: Send {
    /// Handle one message. Sends and reduction contributions go through
    /// `ctx`.
    fn receive(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Downcast support: applications that reclaim chare state after
    /// [`crate::Runtime::into_chares`] (e.g. for chare migration / load
    /// rebalancing) implement this as `fn into_any(self: Box<Self>) ->
    /// Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;

    /// Serialize this chare's recovery-relevant state for a coordinated
    /// checkpoint (taken between phases, when the system is globally
    /// quiescent). The default `None` marks the chare as having no state
    /// worth persisting — the resilient driver skips it and rebuilds it
    /// from the deterministic construction path on restore.
    fn snapshot(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Entry-method context: lets a chare send messages and contribute to the
/// phase's reductions. Engines supply the outgoing-message sink behind it.
pub struct Ctx<'a, M: Message> {
    pub(crate) sender: &'a mut dyn Sender<M>,
    pub(crate) reductions: &'a mut ReductionSlots,
    pub(crate) self_id: ChareId,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// The id of the chare currently executing.
    pub fn self_id(&self) -> ChareId {
        self.self_id
    }

    /// Asynchronously send `msg` to another chare. Counted by completion
    /// detection; delivery order between different destinations is
    /// unspecified (as in Charm++).
    pub fn send(&mut self, to: ChareId, msg: M) {
        self.sender.send(to, msg);
    }

    /// Add `value` into sum-reduction slot `slot` (0-based; see
    /// [`ReductionSlots::N`]). The per-phase totals are returned to the
    /// driver in [`crate::stats::PhaseStats`] — the paper's step 6,
    /// "global system state is updated".
    pub fn contribute(&mut self, slot: usize, value: u64) {
        self.reductions.add(slot, value);
    }
}

/// Engine-side sink for outgoing messages.
pub(crate) trait Sender<M: Message> {
    fn send(&mut self, to: ChareId, msg: M);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecSender<M>(Vec<(ChareId, M)>);
    impl<M: Message> Sender<M> for VecSender<M> {
        fn send(&mut self, to: ChareId, msg: M) {
            self.0.push((to, msg));
        }
    }

    impl Message for u64 {}

    #[test]
    fn ctx_routes_sends_and_contributions() {
        let mut sender = VecSender(Vec::new());
        let mut red = ReductionSlots::default();
        let mut ctx = Ctx {
            sender: &mut sender,
            reductions: &mut red,
            self_id: ChareId(7),
        };
        assert_eq!(ctx.self_id(), ChareId(7));
        ctx.send(ChareId(1), 42u64);
        ctx.send(ChareId(2), 43u64);
        ctx.contribute(0, 5);
        ctx.contribute(0, 6);
        ctx.contribute(3, 1);
        assert_eq!(sender.0, vec![(ChareId(1), 42), (ChareId(2), 43)]);
        assert_eq!(red.get(0), 11);
        assert_eq!(red.get(3), 1);
    }

    #[test]
    fn default_size_bytes() {
        assert_eq!(Message::size_bytes(&0u64), 8);
    }
}
