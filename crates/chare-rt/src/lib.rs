//! # chare-rt — a Charm++-style message-driven runtime
//!
//! EpiSimdemics is "implemented in a parallel language called CHARM++ …
//! accompanied by a message-driven asynchronous runtime. The underlying idea
//! is to over-decompose the computation … into smaller units called chares
//! … and to let the runtime then assign a set of work units to each physical
//! processor" (paper §II-C). No Charm++ exists for Rust, so this crate is a
//! from-scratch runtime with the same execution semantics and — critically
//! for reproducing §IV — the same *optimizations*, each toggleable:
//!
//! * **Chare arrays** ([`chare`]): application objects addressed by dense
//!   ids, mapped to processing elements (PEs) by an arbitrary assignment.
//! * **SMP mode** ([`config::SmpConfig`]): PEs are grouped into OS-process
//!   analogues of `k` cores each; one core per process is reserved for a
//!   communication thread (§IV-A). Intra-process sends are direct memory
//!   handoffs; inter-process sends pay the network path and are accounted
//!   separately.
//! * **Completion detection** ([`completion`]): the 4-counter two-wave
//!   produce/consume algorithm Charm++ exposes as CD (§IV-B), plus a
//!   quiescence-detection (QD) fallback for comparison.
//! * **Message aggregation** ([`aggregator`]): per-destination buffers
//!   flushed on a size threshold or on idle — the application-aware
//!   aggregation of §IV-C (and the TRAM footnote).
//!
//! Four interchangeable engines run the same application code: a
//! deterministic sequential engine ([`seq`]) that simulates any number of
//! PEs on one thread (and measures per-PE busy time, which the
//! `scale-model` crate consumes), a threaded engine ([`threads`]) using
//! real OS threads with crossbeam channels, and a virtual-time
//! deterministic-simulation-testing engine ([`vt`]) that replays arbitrary
//! delivery interleavings from a seed and injects transport faults
//! ([`faults`]), and a networked multi-process engine ([`net`]) that runs
//! one OS process per node over loopback TCP with a dedicated comm thread
//! per process. Applications built on [`runtime::Runtime`] produce
//! identical results under every engine and every benign fault plan; the
//! conformance suites in this crate and in `episim-core` rely on that.

pub mod aggregator;
pub mod chare;
pub mod completion;
pub mod config;
pub mod faults;
pub mod net;
pub mod runtime;
pub mod seq;
pub mod stats;
pub mod threads;
pub mod tram;
pub mod vt;

pub use chare::{Chare, ChareId, Ctx, Message};
pub use config::{AggregationConfig, ExecMode, NetConfig, NetTransport, RuntimeConfig, SmpConfig};
pub use faults::{FaultHook, FaultPlan, FaultRng, NoFaults, PacketFate, PlanFaults};
pub use net::{
    align_to_invocation, crc32, read_frame, worker_target, write_frame, write_frames, Backoff,
    EpochStore, FrameBuf, NetEngine, PeerHealth, Polled, RecoveryError, RecoverySnapshot,
    TransportError, KILL_EXIT, MAX_FRAME, TRANSPORT_EXIT,
};
pub use runtime::Runtime;
pub use stats::{PeStats, PhaseStats};
pub use vt::VtEngine;

/// A processing element: one scheduler queue, analogous to one Charm++
/// worker thread / core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub u32);
