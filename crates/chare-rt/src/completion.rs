//! Completion and quiescence detection (§IV-B).
//!
//! "We need a mechanism to detect the condition when there are no messages
//! awaiting processing or in transit. … We rely on a novel Completion
//! Detection (CD) mechanism … Completion is detected when the participating
//! objects have produced and consumed an equal number of messages
//! globally."
//!
//! The detector is the classic 4-counter two-wave scheme over monotonic
//! counters: read `(P₁, C₁)` while all PEs report idle; if `P₁ == C₁`,
//! re-read after another all-idle observation; if the pair is unchanged,
//! no message can be in flight (an in-flight message would have been
//! produced but not consumed, forcing `P > C`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared detection state for one phase. All counters are monotonic within
/// a phase.
#[derive(Debug)]
pub struct CompletionDetector {
    produced: Vec<AtomicU64>,
    consumed: Vec<AtomicU64>,
    idle: Vec<AtomicBool>,
    /// Set by the coordinator when the phase has completed; workers poll it.
    done: AtomicBool,
}

impl CompletionDetector {
    /// State for `n_pes` participants.
    pub fn new(n_pes: u32) -> Self {
        CompletionDetector {
            produced: (0..n_pes).map(|_| AtomicU64::new(0)).collect(),
            consumed: (0..n_pes).map(|_| AtomicU64::new(0)).collect(),
            idle: (0..n_pes).map(|_| AtomicBool::new(false)).collect(),
            done: AtomicBool::new(false),
        }
    }

    /// Reset for a new phase. Must only be called while no worker is
    /// executing (between phases).
    pub fn reset(&self) {
        for p in &self.produced {
            p.store(0, Ordering::Relaxed);
        }
        for c in &self.consumed {
            c.store(0, Ordering::Relaxed);
        }
        for i in &self.idle {
            i.store(false, Ordering::Relaxed);
        }
        self.done.store(false, Ordering::SeqCst);
    }

    /// Record that PE `pe` produced (sent) `n` countable messages.
    #[inline]
    pub fn produce(&self, pe: u32, n: u64) {
        self.produced[pe as usize].fetch_add(n, Ordering::SeqCst);
    }

    /// Record that PE `pe` consumed (fully processed) `n` messages.
    #[inline]
    pub fn consume(&self, pe: u32, n: u64) {
        self.consumed[pe as usize].fetch_add(n, Ordering::SeqCst);
    }

    /// PE `pe` reports whether it is idle (empty queue, flushed buffers).
    #[inline]
    pub fn set_idle(&self, pe: u32, idle: bool) {
        self.idle[pe as usize].store(idle, Ordering::SeqCst);
    }

    /// Coordinator: has the phase been declared complete?
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Coordinator marks the phase complete; workers observe via
    /// [`Self::is_done`].
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::SeqCst);
    }

    fn snapshot(&self) -> Option<(u64, u64)> {
        // Idle check first: any active PE defeats the wave.
        if !self.idle.iter().all(|i| i.load(Ordering::SeqCst)) {
            return None;
        }
        let p: u64 = self.produced.iter().map(|x| x.load(Ordering::SeqCst)).sum();
        let c: u64 = self.consumed.iter().map(|x| x.load(Ordering::SeqCst)).sum();
        Some((p, c))
    }

    /// One two-wave detection attempt. Returns `true` when completion is
    /// certain. Non-blocking; the coordinator calls this in a loop.
    pub fn try_detect(&self) -> bool {
        let Some((p1, c1)) = self.snapshot() else {
            return false;
        };
        if p1 != c1 {
            return false;
        }
        // Second wave: counters and idleness must be unchanged.
        match self.snapshot() {
            Some((p2, c2)) => p2 == p1 && c2 == c1,
            None => false,
        }
    }

    /// Total messages produced so far.
    pub fn total_produced(&self) -> u64 {
        self.produced.iter().map(|x| x.load(Ordering::SeqCst)).sum()
    }

    /// Total messages consumed so far.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.iter().map(|x| x.load(Ordering::SeqCst)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn no_detection_while_any_pe_active() {
        let cd = CompletionDetector::new(2);
        cd.set_idle(0, true);
        // PE 1 never reported idle.
        assert!(!cd.try_detect());
        cd.set_idle(1, true);
        assert!(cd.try_detect());
    }

    #[test]
    fn no_detection_with_in_flight_message() {
        let cd = CompletionDetector::new(2);
        cd.set_idle(0, true);
        cd.set_idle(1, true);
        cd.produce(0, 1); // sent but not yet consumed
        assert!(!cd.try_detect());
        cd.consume(1, 1);
        assert!(cd.try_detect());
    }

    #[test]
    fn balanced_traffic_detects() {
        let cd = CompletionDetector::new(4);
        for pe in 0..4 {
            cd.produce(pe, 10);
            cd.consume((pe + 1) % 4, 10);
            cd.set_idle(pe, true);
        }
        assert!(cd.try_detect());
        assert_eq!(cd.total_produced(), 40);
        assert_eq!(cd.total_consumed(), 40);
    }

    #[test]
    fn reset_clears_state() {
        let cd = CompletionDetector::new(1);
        cd.produce(0, 5);
        cd.consume(0, 5);
        cd.set_idle(0, true);
        cd.mark_done();
        assert!(cd.is_done());
        cd.reset();
        assert!(!cd.is_done());
        assert_eq!(cd.total_produced(), 0);
        assert!(!cd.try_detect(), "idle flags must reset too");
    }

    #[test]
    fn concurrent_produce_consume_eventually_detects() {
        // Hammer the detector from two threads; after both finish and
        // report idle, detection must succeed and totals must match.
        let cd = Arc::new(CompletionDetector::new(2));
        let mk = |pe: u32, cd: Arc<CompletionDetector>| {
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    cd.produce(pe, 1);
                    cd.consume(1 - pe, 1);
                }
                cd.set_idle(pe, true);
            })
        };
        let h0 = mk(0, cd.clone());
        let h1 = mk(1, cd.clone());
        h0.join().unwrap();
        h1.join().unwrap();
        assert!(cd.try_detect());
        assert_eq!(cd.total_produced(), 20_000);
    }

    #[test]
    fn zero_message_phase_detects_once_all_idle() {
        // A phase with no injections at all: workers report idle without
        // ever producing; detection must fire on 0 == 0.
        let cd = CompletionDetector::new(3);
        assert!(!cd.try_detect(), "nobody idle yet");
        cd.set_idle(0, true);
        cd.set_idle(1, true);
        assert!(!cd.try_detect(), "one PE still active");
        cd.set_idle(2, true);
        assert!(cd.try_detect());
        assert_eq!(cd.total_produced(), 0);
    }

    #[test]
    fn single_pe_self_traffic() {
        // One PE producing for itself: every send must still be counted or
        // the wave would fire while a self-message sits in the queue.
        let cd = CompletionDetector::new(1);
        cd.set_idle(0, true);
        cd.produce(0, 3);
        assert!(!cd.try_detect(), "3 in flight");
        cd.consume(0, 2);
        assert!(!cd.try_detect(), "1 in flight");
        cd.consume(0, 1);
        assert!(cd.try_detect());
    }

    #[test]
    fn reset_mid_phase_discards_partial_progress() {
        // Abort halfway (produced > consumed, some PEs idle), reset, and
        // run a fresh balanced phase: no stale counters or idle flags may
        // leak into the new phase's decision.
        let cd = CompletionDetector::new(2);
        cd.produce(0, 7);
        cd.consume(1, 3);
        cd.set_idle(0, true);
        assert!(!cd.try_detect());
        cd.reset();
        assert_eq!((cd.total_produced(), cd.total_consumed()), (0, 0));
        assert!(!cd.try_detect(), "reset clears idle flags");
        cd.produce(0, 2);
        cd.consume(1, 2);
        cd.set_idle(0, true);
        cd.set_idle(1, true);
        assert!(cd.try_detect());
    }

    #[test]
    fn unidle_after_idle_defeats_detection() {
        // A PE that went idle and then received late work must block the
        // wave again — idleness is a level, not an edge.
        let cd = CompletionDetector::new(2);
        cd.set_idle(0, true);
        cd.set_idle(1, true);
        assert!(cd.try_detect());
        cd.set_idle(1, false); // woke up with a new message
        cd.produce(1, 1);
        assert!(!cd.try_detect());
        cd.consume(1, 1);
        cd.set_idle(1, true);
        assert!(cd.try_detect());
    }

    #[test]
    fn wave_fails_if_counters_move_between_reads() {
        // Simulate by checking first snapshot manually then perturbing.
        let cd = CompletionDetector::new(1);
        cd.set_idle(0, true);
        let s1 = cd.snapshot().unwrap();
        assert_eq!(s1, (0, 0));
        cd.produce(0, 1);
        // The public try_detect always re-snapshots, so an imbalanced pair
        // is rejected.
        assert!(!cd.try_detect());
    }
}
