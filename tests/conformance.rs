//! Epidemic-level cross-engine conformance (DESIGN.md §7): the same
//! scenario must produce the identical epidemic-curve FNV hash on the
//! sequential engine, the threaded engine, and the virtual-time DST engine
//! under every benign fault plan — across a grid of seeds × plans. The
//! lossy plan is the negative control: it must be caught.

use episimdemics::chare_rt::{align_to_invocation, worker_target, FaultPlan, RuntimeConfig};
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::core::splitloc::SplitConfig;
use episimdemics::load_model::PiecewiseModel;
use episimdemics::ptts::flu_model;
use episimdemics::synthpop::{Population, PopulationConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig::small("CONF", 1000, 19))
}

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig {
        days: 12,
        r: 0.0015,
        seed,
        initial_infections: 6,
        ..Default::default()
    }
}

fn curve_hash_under(dist: &DataDistribution, seed: u64, rt: RuntimeConfig) -> u64 {
    Simulator::run_curve(dist, flu_model(), sim_cfg(seed), rt).hash()
}

/// 8 seeds × {sequential, threaded, DST under 5 benign fault plans}: one
/// hash per seed. Message delay, lane reordering, duplicate delivery,
/// drop-with-redelivery, and PE stalls are all invisible to the epidemic.
#[test]
fn epidemic_hash_identical_across_engines_and_fault_plans() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    let plans: [fn(u64) -> FaultPlan; 5] = [
        FaultPlan::reorder,
        FaultPlan::duplicates,
        FaultPlan::drops,
        FaultPlan::stalls,
        FaultPlan::chaos,
    ];
    let mut hashes = Vec::new();
    for seed in 1..=8u64 {
        let reference = curve_hash_under(&dist, seed, RuntimeConfig::sequential(4));
        let threaded = curve_hash_under(&dist, seed, RuntimeConfig::threaded(3));
        assert_eq!(threaded, reference, "threaded diverged at seed {seed}");
        for (pi, plan) in plans.iter().enumerate() {
            let rt = RuntimeConfig::dst(4, plan(seed * 1000 + pi as u64));
            let dst = curve_hash_under(&dist, seed, rt);
            assert_eq!(
                dst, reference,
                "DST engine diverged at seed {seed}, plan {pi}"
            );
        }
        hashes.push(reference);
    }
    // The per-seed hashes themselves must differ — if they collided, the
    // grid would be vacuous.
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 8, "seeds must produce distinct epidemics");
}

/// The net engine joins the conformance grid: 8 seeds × {1, 2, 4} worker
/// processes, every curve hash bit-identical to the sequential engine.
/// Worker processes re-execute this test (SPMD); they jump straight to
/// their target invocation with [`align_to_invocation`] and never compute
/// the sequential references.
#[test]
fn net_engine_matches_sequential_across_process_counts() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    const PROCS: [u32; 3] = [1, 2, 4];
    if let Some(target) = worker_target() {
        // Worker replay: invocation (seed-1)·3 + pi, mirroring the root's
        // loop below. Run only the one net simulation this worker joins —
        // the process exits inside the runtime teardown.
        let seed = target / PROCS.len() as u64 + 1;
        let n_procs = PROCS[(target % PROCS.len() as u64) as usize];
        align_to_invocation(target);
        curve_hash_under(&dist, seed, RuntimeConfig::net(4, n_procs));
        return;
    }
    for seed in 1..=8u64 {
        let reference = curve_hash_under(&dist, seed, RuntimeConfig::sequential(4));
        for n_procs in PROCS {
            let net = curve_hash_under(&dist, seed, RuntimeConfig::net(4, n_procs));
            assert_eq!(
                net, reference,
                "net engine diverged at seed {seed} with {n_procs} processes"
            );
        }
    }
}

/// splitLoc-heavy regression (DESIGN.md §3): force an aggressive visit
/// threshold so most multi-room locations split, then require (a) the
/// split actually happened, (b) every engine agrees on the curve, and
/// (c) the hash matches a pinned constant — so a silent change to the
/// split planner, cohort routing, or location RNG streams shows up as a
/// red test, not a quiet drift.
#[test]
fn splitloc_heavy_curve_hash_is_pinned_and_engine_invariant() {
    let pop = pop();
    let split = SplitConfig {
        max_partitions: 1024,
        threshold_override: Some(4),
    };
    let dist = DataDistribution::build_with(
        &pop,
        Strategy::GraphPartitionSplit,
        4,
        19,
        &split,
        &PiecewiseModel::paper_constants(),
    );
    assert!(
        dist.pop.n_locations() > pop.n_locations(),
        "threshold 4 must split locations ({} vs {}) or the test is vacuous",
        dist.pop.n_locations(),
        pop.n_locations()
    );
    let reference = curve_hash_under(&dist, 7, RuntimeConfig::sequential(4));
    assert_eq!(
        reference,
        curve_hash_under(&dist, 7, RuntimeConfig::threaded(3)),
        "threaded engine diverged on the split population"
    );
    assert_eq!(
        reference,
        curve_hash_under(&dist, 7, RuntimeConfig::dst(4, FaultPlan::chaos(77))),
        "DST engine diverged on the split population"
    );
    // Splitting must also leave the epidemic itself unchanged: the same
    // scenario without splitLoc produces the identical curve (§III-C's
    // "provably does not change simulation results").
    let unsplit = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    assert_eq!(
        reference,
        curve_hash_under(&unsplit, 7, RuntimeConfig::sequential(4)),
        "splitLoc changed the epidemic"
    );
    // Pinned: any edit that moves this constant is a determinism break.
    assert_eq!(
        reference, 0x81ac_e93d_9693_bd5f,
        "pinned splitLoc curve hash moved"
    );
}

/// The ensemble engine joins the conformance grid: a pinned 3 × 3
/// transmissibility/seed sweep whose [`ResultStore`] hash must be
/// identical on 1, 2, and 5 workers AND match a pinned constant. A moved
/// constant means the ensemble path diverged from the oracle — a
/// determinism break, not a tolerable drift.
#[test]
fn ensemble_sweep_hash_is_pinned_and_worker_invariant() {
    use episimdemics::core::ensemble::{run_sweep, CowWorld, EnsembleSpec};

    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    let world = CowWorld::build(&dist, flu_model());
    let spec = EnsembleSpec::grid(&sim_cfg(19), &[0.0008, 0.0015, 0.0030], 3);
    let reference = run_sweep(&world, &spec, 1).hash();
    for workers in [2u32, 5] {
        assert_eq!(
            run_sweep(&world, &spec, workers).hash(),
            reference,
            "ensemble sweep diverged at {workers} workers"
        );
    }
    // Each member must equal the standalone simulator on the same config —
    // the store is a pure re-indexing of per-member runs, never a blend.
    let store = run_sweep(&world, &spec, 3);
    let standalone = Simulator::run_curve(
        &dist,
        flu_model(),
        spec.points[1].config(&spec.base, spec.seeds[2]),
        RuntimeConfig::sequential(4),
    );
    assert_eq!(store.curve(1, 2), &standalone, "member (1,2) diverged");
    // Pinned: any edit that moves this constant is a determinism break.
    assert_eq!(
        reference, 0x7ef1_0c93_9d4b_2bc5,
        "pinned ensemble sweep hash moved"
    );
}

/// Negative control for the net engine: killing a worker process mid-run
/// must surface as a transport error on the root, not hang and not produce
/// a curve. (The killed worker exits abruptly at phase entry; phase 5 is
/// day 1's location phase.)
#[test]
fn net_killed_worker_is_a_transport_error() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    let mut rt = RuntimeConfig::net(4, 2);
    rt.net.kill_rank = 1;
    rt.net.kill_phase = 5;
    // Workers re-run this same body; the doomed rank exits inside the
    // runtime before the catch_unwind outcome matters.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        curve_hash_under(&dist, 11, rt)
    }));
    let err = result.expect_err("root must panic when a worker dies");
    let te = err
        .downcast_ref::<chare_rt::TransportError>()
        .expect("panic payload must be a typed TransportError, not an arbitrary crash");
    assert!(
        te.0.contains("disconnected") || te.0.contains("failed"),
        "expected the error to describe the peer loss, got: {te}"
    );
}

/// Negative control (EXPERIMENTS.md): a transport that drops messages
/// without redelivery must change the epidemic hash and report the loss.
/// If this test ever passes with `lost == 0` or equal hashes, the
/// conformance suite has stopped testing anything.
#[test]
fn negative_control_lossy_transport_changes_the_epidemic() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 19);
    let reference =
        Simulator::run_curve(&dist, flu_model(), sim_cfg(3), RuntimeConfig::sequential(4));

    // Partial loss: drop 30% of first transmissions, never redeliver.
    let mut plan = FaultPlan::lossy(7);
    plan.drop_permille = 300;
    let run = Simulator::new(&dist, flu_model(), sim_cfg(3), RuntimeConfig::dst(4, plan)).run();
    let lost: u64 = run
        .perf
        .iter()
        .map(|d| {
            d.person_phase.totals().lost
                + d.location_phase.totals().lost
                + d.apply_phase.totals().lost
        })
        .sum();
    assert!(lost > 0, "lossy plan must report lost messages");
    assert_ne!(
        run.curve.hash(),
        reference.hash(),
        "losing 30% of messages must change the epidemic curve"
    );
}

/// What MAY vary across engines and benign plans: wall time, packet
/// counts, per-PE message splits. What must NOT: the curve hash. This
/// pins the contract's "allowed to vary" side so it stays honest.
#[test]
fn packet_counts_may_vary_but_curve_may_not() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 4, 19);
    let mut agg_on = RuntimeConfig::dst(4, FaultPlan::reorder(5));
    agg_on.smp.pes_per_process = 1; // every PE its own process: all remote
    let mut agg_off = agg_on;
    agg_off.aggregation.enabled = false;
    let a = Simulator::new(&dist, flu_model(), sim_cfg(2), agg_on).run();
    let b = Simulator::new(&dist, flu_model(), sim_cfg(2), agg_off).run();
    assert_eq!(a.curve.hash(), b.curve.hash());
    let packets = |r: &episimdemics::core::simulator::SimRun| -> u64 {
        r.perf
            .iter()
            .map(|d| d.person_phase.totals().network_packets)
            .sum()
    };
    assert!(
        packets(&b) > packets(&a),
        "aggregation must change packet counts ({} vs {})",
        packets(&a),
        packets(&b)
    );
}
