//! End-to-end integration: the full paper pipeline — generate a synthetic
//! state, preprocess, partition, simulate on the message-driven runtime,
//! and project to scale — exercised across crate boundaries.

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::seq::run_sequential;
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::load_model::{LoadUnits, PiecewiseModel};
use episimdemics::ptts::flu_model;
use episimdemics::scale_model::{
    inputs_from_distribution, project_day, MachineModel, RuntimeOptions,
};
use episimdemics::synthpop::{Population, PopulationConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig::small("E2E", 2500, 77))
}

fn cfg() -> SimConfig {
    SimConfig {
        days: 30,
        r: 0.0012,
        seed: 77,
        initial_infections: 8,
        ..Default::default()
    }
}

#[test]
fn full_pipeline_all_strategies_all_engines() {
    let pop = pop();
    let ptts = flu_model();
    let oracle = run_sequential(&pop, &ptts, &cfg());
    assert!(oracle.total_infections() > 20, "outbreak must take off");
    for strategy in Strategy::ALL {
        for k in [1u32, 3, 8] {
            let dist = DataDistribution::build(&pop, strategy, k, 77);
            let run = Simulator::new(
                &dist,
                flu_model(),
                cfg(),
                RuntimeConfig::sequential(k.min(4)),
            )
            .run();
            assert_eq!(
                run.curve, oracle,
                "{strategy:?} k={k} diverged from the oracle"
            );
        }
    }
    // Threaded spot check.
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 77);
    let run = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::threaded(4)).run();
    assert_eq!(run.curve, oracle);
}

#[test]
fn no_opt_runtime_same_epidemic_more_packets() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 4, 77);
    let opt = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(4)).run();
    let noopt = Simulator::new(
        &dist,
        flu_model(),
        cfg(),
        RuntimeConfig::sequential(4).no_opt(),
    )
    .run();
    assert_eq!(
        opt.curve, noopt.curve,
        "§IV optimizations must not change results"
    );
    let packets_opt: u64 = opt
        .perf
        .iter()
        .map(|p| p.person_phase.totals().network_packets)
        .sum();
    let packets_noopt: u64 = noopt
        .perf
        .iter()
        .map(|p| p.person_phase.totals().network_packets)
        .sum();
    assert!(
        packets_noopt > 5 * packets_opt.max(1),
        "aggregation should collapse packets: {packets_opt} vs {packets_noopt}"
    );
}

#[test]
fn projection_pipeline_prefers_paper_winner() {
    // The whole point of the paper: at scale, GP-splitLoc wins.
    let pop = Population::generate(&PopulationConfig::small("proj", 20_000, 3));
    let machine = MachineModel::default();
    let opts = RuntimeOptions::optimized();
    let model = PiecewiseModel::paper_constants();
    let mut secs = std::collections::HashMap::new();
    for strategy in Strategy::ALL {
        let dist = DataDistribution::build(&pop, strategy, 128, 3);
        let inputs = inputs_from_distribution(&dist, &model, LoadUnits::default());
        secs.insert(
            strategy.label(),
            project_day(&inputs, &machine, &opts).seconds,
        );
    }
    let gp_split = secs["GP-splitLoc"];
    assert!(
        gp_split <= secs["RR"],
        "GP-splitLoc {gp_split} vs RR {}",
        secs["RR"]
    );
    assert!(
        gp_split <= secs["GP"],
        "GP-splitLoc {gp_split} vs GP {}",
        secs["GP"]
    );
}

#[test]
fn tram_routing_does_not_change_epidemic() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 9, 77);
    let mut rt = RuntimeConfig::sequential(9);
    rt.smp.pes_per_process = 1;
    let plain = Simulator::new(&dist, flu_model(), cfg(), rt).run();
    let mut rt_tram = rt;
    rt_tram.aggregation.tram_2d = true;
    let tram = Simulator::new(&dist, flu_model(), cfg(), rt_tram).run();
    assert_eq!(plain.curve, tram.curve);
    // TRAM relays some visits via intermediate PEs.
    let forwarded: u64 = tram
        .perf
        .iter()
        .map(|p| p.person_phase.totals().forwarded)
        .sum();
    assert!(forwarded > 0, "expected TRAM relays on a 3x3 grid");
}

#[test]
fn epidemic_conservation_laws() {
    let pop = pop();
    let ptts = flu_model();
    let curve = run_sequential(&pop, &ptts, &cfg());
    let population = curve.population;
    let mut prev_cumulative = curve.seeds;
    for d in &curve.days {
        // Susceptible at day start + everyone ever infected before today
        // must equal the population.
        assert_eq!(
            d.susceptible + prev_cumulative,
            population,
            "conservation violated at day {}",
            d.day
        );
        assert_eq!(d.cumulative, prev_cumulative + d.new_infections);
        assert!(d.symptomatic <= d.infected_now);
        prev_cumulative = d.cumulative;
    }
}

#[test]
fn seirs_produces_endemic_dynamics() {
    // With waning immunity the disease persists instead of burning out —
    // and the parallel simulator still matches the oracle exactly.
    use episimdemics::ptts::seirs_model;
    let pop = pop();
    let cfg = SimConfig {
        days: 120,
        r: 0.0012,
        seed: 77,
        initial_infections: 8,
        stop_when_extinct: true,
        ..Default::default()
    };
    let oracle = run_sequential(&pop, &seirs_model(20.0), &cfg);
    // Endemic: still producing infections in the final month.
    let late: u64 = oracle
        .days
        .iter()
        .rev()
        .take(30)
        .map(|d| d.new_infections)
        .sum();
    assert!(late > 0, "SEIRS should persist (late infections = {late})");
    assert_eq!(
        oracle.days.len(),
        120,
        "no extinction under waning immunity"
    );
    // Reinfection actually happens: cumulative exceeds the population.
    assert!(
        oracle.total_infections() > oracle.population,
        "cumulative {} should exceed population {} via reinfection",
        oracle.total_infections(),
        oracle.population
    );
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 77);
    let parallel =
        Simulator::new(&dist, seirs_model(20.0), cfg, RuntimeConfig::sequential(4)).run();
    assert_eq!(parallel.curve, oracle);
}

#[test]
fn larger_k_never_changes_epidemiology_only_performance() {
    let pop = pop();
    let mut last_series = None;
    for k in [2u32, 5, 16] {
        let dist = DataDistribution::build(&pop, Strategy::GraphPartition, k, 1);
        let run = Simulator::new(&dist, flu_model(), cfg(), RuntimeConfig::sequential(2)).run();
        let series = run.curve.new_infection_series();
        if let Some(prev) = &last_series {
            assert_eq!(prev, &series, "k={k}");
        }
        last_series = Some(series);
    }
}

/// Seed-sweep determinism: the same scenario across 8 simulation seeds
/// must hash identically under {sequential, threaded, threaded without
/// aggregation} — the per-seed epidemic is a property of the seed, never
/// of the engine or the packet schedule (DESIGN.md §7).
#[test]
fn seed_sweep_identical_hashes_across_engines() {
    let pop = Population::generate(&PopulationConfig::small("SWEEP", 1000, 13));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 3, 13);
    let sim = |seed: u64| SimConfig {
        days: 12,
        r: 0.0015,
        seed,
        initial_infections: 6,
        ..Default::default()
    };
    let mut thr_noagg = RuntimeConfig::threaded(3);
    thr_noagg.aggregation.enabled = false;
    let mut per_seed = Vec::new();
    for seed in 1..=8u64 {
        let reference =
            Simulator::run_curve(&dist, flu_model(), sim(seed), RuntimeConfig::sequential(3))
                .hash();
        for (label, rt) in [
            ("threaded", RuntimeConfig::threaded(3)),
            ("threaded-noagg", thr_noagg),
        ] {
            let h = Simulator::run_curve(&dist, flu_model(), sim(seed), rt).hash();
            assert_eq!(h, reference, "{label} diverged at seed {seed}");
        }
        per_seed.push(reference);
    }
    per_seed.sort_unstable();
    per_seed.dedup();
    assert_eq!(
        per_seed.len(),
        8,
        "distinct seeds must yield distinct curves"
    );
}

/// Pins the exact epidemic produced by (pop seed 77, sim seed 77, 30 days)
/// against hard-coded values captured from the pre-scratch-kernel
/// implementation. The location kernel's CRNG draws are keyed purely by
/// (seed, person, day, purpose, start_min), so any refactor of the event
/// sweep, visit ordering, or buffer management must reproduce this curve
/// bit-for-bit — a change here means the determinism contract broke, not
/// that the test needs updating.
#[test]
fn epidemic_curve_pinned_across_kernel_versions() {
    let oracle = run_sequential(&pop(), &flu_model(), &cfg());
    let days: Vec<u64> = oracle.days.iter().map(|d| d.new_infections).collect();
    assert_eq!(oracle.total_infections(), 2499);
    assert_eq!(oracle.days.iter().map(|d| d.events).sum::<u64>(), 736_480);
    assert_eq!(
        oracle.days.iter().map(|d| d.infects_sent).sum::<u64>(),
        2965
    );
    assert_eq!(
        days,
        vec![
            2, 11, 27, 47, 89, 150, 229, 406, 484, 468, 320, 145, 74, 22, 8, 5, 2, 1, 0, 0, 1, 0,
            0, 0, 0, 0, 0
        ]
    );
}
