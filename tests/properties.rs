//! Property-based tests over the core invariants, with `proptest` driving
//! population shapes, seeds, partition counts and strategies.

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy as DistStrategy};
use episimdemics::core::kernel::{
    simulate_location_day, simulate_location_day_grouped, InfectivityClasses, KernelScratch,
    VisitBuffer,
};
use episimdemics::core::messages::{InfectMsg, VisitMsg};
use episimdemics::core::seq::run_sequential;
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::core::splitloc::{split_heavy_locations, SplitConfig};
use episimdemics::graph_part::{kway_partition, PartitionConfig, PartitionQuality};
use episimdemics::load_model::fit::{fit_linear, fit_piecewise};
use episimdemics::ptts::crng::{CounterRng, Purpose};
use episimdemics::ptts::flu_model;
use episimdemics::ptts::model::{HealthTracker, StateId};
use episimdemics::ptts::transmission::select_infector;
use episimdemics::ptts::Ptts;
use episimdemics::synthpop::{Population, PopulationConfig};
use proptest::prelude::*;

fn arb_pop() -> impl Strategy<Value = Population> {
    (300u32..1200, 0u64..1000)
        .prop_map(|(n, seed)| Population::generate(&PopulationConfig::small("P", n, seed)))
}

/// Arbitrary one-location visit buffers: mixed states, sublocations, time
/// windows (including zero-duration stays) and susceptibility scales. The
/// canonical kernel order is `(sublocation, start, person)`, so those keys
/// are kept unique — duplicates would make the unstable sorts ambiguous.
fn arb_visits() -> impl Strategy<Value = Vec<VisitMsg>> {
    collection::vec(
        (0u32..12, 0u16..5, 0u16..1200, 0u16..240, 0u32..1000),
        1..40,
    )
    .prop_map(|raw| {
        let n_states = flu_model().n_states() as u32;
        let mut seen = std::collections::HashSet::new();
        let mut visits = Vec::new();
        for (person, sublocation, start_min, dur, mix) in raw {
            if !seen.insert((sublocation, start_min, person)) {
                continue;
            }
            visits.push(VisitMsg {
                person,
                location: 0,
                sublocation,
                start_min,
                end_min: start_min + dur,
                state: StateId((mix % n_states) as u16),
                sus_scale: match (mix / n_states) % 3 {
                    0 => 0.0,
                    1 => 0.5,
                    _ => 1.0,
                },
            });
        }
        visits
    })
}

/// Deterministic Fisher–Yates driven by a splitmix-style stream (the
/// proptest shim has no `prop_shuffle`).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..items.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.swap(i, (s >> 33) as usize % (i + 1));
    }
}

/// A deliberately naive O(n²) reference for the location DES: per-class
/// exposure integrals computed as pairwise interval overlaps, fresh
/// allocations everywhere, plain comparison sorts. Emits the same
/// `InfectMsg` stream the scratch kernel must produce (the CRNG keys every
/// draw by `(seed, person, day, start_min)`, so only the resolution order —
/// sublocation ascending, then departure time, then canonical index —
/// matters for the stream).
fn naive_location_day(
    visits: &[VisitMsg],
    ptts: &Ptts,
    r_eff: f64,
    seed: u64,
    day: u32,
) -> (Vec<InfectMsg>, u64, f64) {
    // Rebuild the dense infectivity classes from the public PTTS API.
    let mut class_of_state = vec![usize::MAX; ptts.n_states()];
    let mut iota: Vec<f64> = Vec::new();
    for (s, slot) in class_of_state.iter_mut().enumerate() {
        let inf = ptts.infectivity(StateId(s as u16));
        if inf > 0.0 {
            *slot = iota
                .iter()
                .position(|&x| (x - inf).abs() < 1e-12)
                .unwrap_or_else(|| {
                    iota.push(inf);
                    iota.len() - 1
                });
        }
    }
    let class = |st: StateId| {
        let c = class_of_state[st.0 as usize];
        (c != usize::MAX).then_some(c)
    };

    let mut sorted = visits.to_vec();
    sorted.sort_by_key(|v| {
        ((v.sublocation as u64) << 48) | ((v.start_min as u64) << 32) | v.person as u64
    });
    let mut out = Vec::new();
    let mut interactions = 0u64;
    let mut sum_recip = 0.0f64;
    let mut lo = 0usize;
    while lo < sorted.len() {
        let mut hi = lo + 1;
        while hi < sorted.len() && sorted[hi].sublocation == sorted[lo].sublocation {
            hi += 1;
        }
        let group = &sorted[lo..hi];
        // Susceptibles resolve at their departure events.
        let mut order: Vec<usize> = (0..group.len()).collect();
        order.sort_by_key(|&i| ((group[i].end_min as u64) << 32) | i as u64);
        for &i in &order {
            let v = &group[i];
            if v.end_min <= v.start_min || !ptts.is_susceptible(v.state) || v.sus_scale <= 0.0 {
                continue;
            }
            let s_i = ptts.susceptibility(v.state) * v.sus_scale as f64;
            let mut tau = vec![0.0f64; iota.len()];
            let mut encounters = 0u64;
            for (j, w) in group.iter().enumerate() {
                if j == i || w.end_min <= w.start_min {
                    continue;
                }
                let Some(c) = class(w.state) else { continue };
                let ov =
                    (v.end_min.min(w.end_min) as i32 - v.start_min.max(w.start_min) as i32).max(0);
                if ov > 0 {
                    tau[c] += ov as f64;
                    encounters += 1;
                }
            }
            interactions += encounters;
            if encounters > 0 {
                sum_recip += 1.0 / encounters as f64;
            }
            let mut log_escape = 0.0f64;
            for (c, &t) in tau.iter().enumerate() {
                if t <= 0.0 {
                    continue;
                }
                let q = (r_eff * s_i * iota[c]).clamp(0.0, 1.0 - 1e-12);
                if q > 0.0 {
                    log_escape += t * (-q).ln_1p();
                }
            }
            let p = 1.0 - log_escape.exp();
            if p <= 0.0 {
                continue;
            }
            let mut rng = CounterRng::from_key(&[
                seed,
                v.person as u64,
                day as u64,
                Purpose::Infection as u64,
                v.start_min as u64,
            ]);
            if !rng.bernoulli(p) {
                continue;
            }
            let mut cands: Vec<(u32, f64)> = Vec::new();
            for w in group.iter() {
                if w.person == v.person && w.start_min == v.start_min {
                    continue;
                }
                let Some(c) = class(w.state) else { continue };
                let ov = (v.end_min.min(w.end_min) as i32 - v.start_min.max(w.start_min) as i32)
                    .max(0) as f64;
                if ov > 0.0 {
                    let q = (r_eff * s_i * iota[c]).clamp(0.0, 1.0 - 1e-12);
                    cands.push((w.person, 1.0 - (ov * (-q).ln_1p()).exp()));
                }
            }
            let infector = if cands.is_empty() {
                u32::MAX
            } else {
                let probs: Vec<f64> = cands.iter().map(|&(_, p)| p).collect();
                match select_infector(&probs, rng.uniform_f64()) {
                    Some(k) => cands[k].0,
                    None => u32::MAX,
                }
            };
            out.push(InfectMsg {
                person: v.person,
                time_min: v.start_min,
                infector,
            });
        }
        lo = hi;
    }
    (out, interactions, sum_recip)
}

fn arb_strategy() -> impl Strategy<Value = DistStrategy> {
    prop_oneof![
        Just(DistStrategy::RoundRobin),
        Just(DistStrategy::GraphPartition),
        Just(DistStrategy::RoundRobinSplit),
        Just(DistStrategy::GraphPartitionSplit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flagship property: the parallel simulator equals the sequential
    /// oracle for any population, seed, distribution strategy and PE count.
    #[test]
    fn parallel_equals_oracle(
        pop in arb_pop(),
        strategy in arb_strategy(),
        k in 1u32..6,
        pes in 1u32..4,
        sim_seed in 0u64..500,
    ) {
        let cfg = SimConfig {
            days: 12,
            r: 0.0015,
            seed: sim_seed,
            initial_infections: 4,
            ..Default::default()
        };
        let oracle = run_sequential(&pop, &flu_model(), &cfg);
        let dist = DataDistribution::build(&pop, strategy, k, sim_seed);
        let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(pes)).run();
        prop_assert_eq!(run.curve, oracle);
    }

    /// splitLoc conserves visits, people and interaction cohorts for any
    /// threshold.
    #[test]
    fn splitloc_conserves(pop in arb_pop(), threshold in 10u32..200) {
        let res = split_heavy_locations(&pop, &SplitConfig {
            max_partitions: 64,
            threshold_override: Some(threshold),
        });
        prop_assert_eq!(res.pop.visits.len(), pop.visits.len());
        prop_assert_eq!(res.pop.people.len(), pop.people.len());
        // Degrees after split never exceed the original maximum.
        let deg = |p: &Population| {
            let mut d = vec![0u32; p.locations.len()];
            for v in &p.visits { d[v.location.0 as usize] += 1; }
            d
        };
        let dmax_before = deg(&pop).into_iter().max().unwrap_or(0);
        let dmax_after = deg(&res.pop).into_iter().max().unwrap_or(0);
        prop_assert!(dmax_after <= dmax_before);
        // Every visit's sublocation stays within its location's rooms.
        for v in &res.pop.visits {
            prop_assert!(
                v.sublocation.0 < res.pop.locations[v.location.0 as usize].n_sublocations
            );
        }
    }

    /// The partitioner always returns a valid assignment whose max load is
    /// at least the heaviest vertex (a sanity floor) and whose speedup
    /// bound never exceeds the Ltot/lmax ceiling.
    #[test]
    fn partitioner_bounds(pop in arb_pop(), k in 2u32..32) {
        let (g, _) = episimdemics::core::build_workload_graph(
            &pop,
            &episimdemics::load_model::PiecewiseModel::paper_constants(),
            episimdemics::load_model::LoadUnits::default(),
        );
        let part = kway_partition(&g, &PartitionConfig::new(k));
        prop_assert!(part.validate().is_ok());
        let q = PartitionQuality::compute(&g, &part);
        for c in 0..2 {
            let lmax_vertex = (0..g.n()).map(|v| g.vwgt(v, c)).max().unwrap_or(0);
            prop_assert!(q.max_load(c) >= lmax_vertex);
            let sub = q.speedup_upper_bound(c);
            let ceiling = q.total_load(c) as f64 / lmax_vertex.max(1) as f64;
            prop_assert!(sub <= ceiling + 1e-9);
        }
    }

    /// Health trajectories terminate and are reproducible for any entity.
    #[test]
    fn ptts_trajectories_terminate(seed in 0u64..10_000, entity in 0u64..10_000) {
        let m = flu_model();
        let mut h = HealthTracker::new(&m);
        h.infect(&m, seed, entity, 0);
        let mut day = 1u64;
        while h.days_remaining != u32::MAX {
            h.advance(&m, seed, entity, day);
            day += 1;
            prop_assert!(day < 200, "flu course must terminate");
        }
        prop_assert_eq!(m.state(h.state).name.as_str(), "recovered");
    }

    /// Piecewise fitting never panics and reproduces a clean linear signal
    /// on arbitrary grids.
    #[test]
    fn piecewise_fit_on_linear_data(
        a in -100.0f64..100.0,
        b in 0.1f64..10.0,
        n in 6usize..100,
    ) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| {
            let x = i as f64;
            (x, a + b * x)
        }).collect();
        let m = fit_piecewise(&pts, 1.0).unwrap();
        let lin = fit_linear(&pts).unwrap();
        prop_assert!((lin.b - b).abs() < 1e-6);
        // The piecewise model on a linear signal predicts within noise.
        for &(x, y) in &pts {
            prop_assert!((m.eval(x).max(0.0) - y.max(0.0)).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    /// The location DES is invariant under any permutation of the visit
    /// buffer: message arrival order must never leak into results.
    #[test]
    fn kernel_invariant_under_visit_permutation(
        visits in arb_visits(),
        shuffle_seed in 0u64..10_000,
        r_scale in 1u32..80,
    ) {
        let r_eff = r_scale as f64 * 1e-4;
        let ptts = flu_model();
        let classes = InfectivityClasses::new(&ptts);
        let mut scratch = KernelScratch::new();

        let mut base = visits.clone();
        let mut out_a = Vec::new();
        let fa = simulate_location_day(
            &mut base, &ptts, &classes, r_eff, 7, 2, &mut scratch, &mut out_a,
        );
        let mut shuffled = visits;
        shuffle(&mut shuffled, shuffle_seed);
        let mut out_b = Vec::new();
        let fb = simulate_location_day(
            &mut shuffled, &ptts, &classes, r_eff, 7, 2, &mut scratch, &mut out_b,
        );
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(fa, fb);
    }

    /// The insert-time-grouped kernel path is bit-identical to the flat
    /// path on the same visits, whatever order they were pushed in.
    #[test]
    fn grouped_kernel_matches_flat(
        visits in arb_visits(),
        shuffle_seed in 0u64..10_000,
        r_scale in 1u32..80,
    ) {
        let r_eff = r_scale as f64 * 1e-4;
        let ptts = flu_model();
        let classes = InfectivityClasses::new(&ptts);
        let mut scratch = KernelScratch::new();

        let mut flat = visits.clone();
        let mut out_flat = Vec::new();
        let ff = simulate_location_day(
            &mut flat, &ptts, &classes, r_eff, 11, 4, &mut scratch, &mut out_flat,
        );
        let mut shuffled = visits;
        shuffle(&mut shuffled, shuffle_seed);
        let mut buf = VisitBuffer::new();
        for v in shuffled {
            buf.push(v);
        }
        let mut out_grouped = Vec::new();
        let fg = simulate_location_day_grouped(
            &mut buf, &ptts, &classes, r_eff, 11, 4, &mut scratch, &mut out_grouped,
        );
        prop_assert_eq!(out_flat, out_grouped);
        prop_assert_eq!(ff, fg);
    }

    /// The scratch-buffer sweep kernel produces the exact `InfectMsg`
    /// stream of a naive O(n²) pairwise reference — the determinism
    /// contract the zero-allocation refactor must uphold.
    #[test]
    fn scratch_kernel_matches_naive_reference(
        visits in arb_visits(),
        kernel_seed in 0u64..100,
        r_scale in 1u32..80,
    ) {
        let r_eff = r_scale as f64 * 1e-4;
        let ptts = flu_model();
        let classes = InfectivityClasses::new(&ptts);
        let mut scratch = KernelScratch::new();

        let mut buf = visits.clone();
        let mut out = Vec::new();
        let f = simulate_location_day(
            &mut buf, &ptts, &classes, r_eff, kernel_seed, 3, &mut scratch, &mut out,
        );
        let (naive_out, naive_inter, naive_recip) =
            naive_location_day(&visits, &ptts, r_eff, kernel_seed, 3);
        prop_assert_eq!(out, naive_out);
        prop_assert_eq!(f.interactions, naive_inter);
        prop_assert_eq!(f.events, 2 * visits.len() as u64);
        prop_assert!(f.sum_reciprocal_interactions.to_bits() == naive_recip.to_bits());
    }

    /// Ensemble determinism: for a random (seed grid, r grid), the sweep's
    /// result store is bit-identical to running each member standalone via
    /// `Simulator::run_curve`, regardless of worker count — scheduling
    /// interleaving must be unobservable in the output.
    #[test]
    fn ensemble_equals_standalone_members(
        pop in arb_pop(),
        strategy in arb_strategy(),
        base_seed in 0u64..500,
        r_lo in 4u32..12,
        workers in 1u32..6,
        n_seeds in 1u32..4,
    ) {
        use episimdemics::core::ensemble::{run_sweep, CowWorld, EnsembleSpec};

        let base = SimConfig {
            days: 10,
            r: 0.0,
            seed: base_seed,
            initial_infections: 4,
            ..Default::default()
        };
        let rs = [r_lo as f64 * 1e-4, (r_lo + 8) as f64 * 1e-4];
        let dist = DataDistribution::build(&pop, strategy, 3, base_seed);
        let world = CowWorld::build(&dist, flu_model());
        let spec = EnsembleSpec::grid(&base, &rs, n_seeds);
        let store = run_sweep(&world, &spec, workers);
        for pi in 0..spec.points.len() {
            for si in 0..spec.seeds.len() {
                let member = spec.points[pi].config(&base, spec.seeds[si]);
                let standalone = Simulator::run_curve(
                    &dist,
                    flu_model(),
                    member,
                    RuntimeConfig::sequential(2),
                );
                prop_assert_eq!(store.curve(pi, si), &standalone);
            }
        }
    }

    /// Generated populations always satisfy their structural contract.
    #[test]
    fn population_contract(pop in arb_pop()) {
        prop_assert_eq!(pop.person_offsets.len(), pop.people.len() + 1);
        for (pid, vs) in pop.iter_people() {
            prop_assert!(!vs.is_empty());
            let mut cursor = 0u16;
            for v in vs {
                prop_assert_eq!(v.person, pid);
                prop_assert_eq!(v.start_min, cursor);
                cursor = v.end_min();
            }
            prop_assert_eq!(cursor, synthpop::MINUTES_PER_DAY);
        }
    }
}
