//! Property-based tests over the core invariants, with `proptest` driving
//! population shapes, seeds, partition counts and strategies.

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy as DistStrategy};
use episimdemics::core::seq::run_sequential;
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::core::splitloc::{split_heavy_locations, SplitConfig};
use episimdemics::graph_part::{kway_partition, PartitionConfig, PartitionQuality};
use episimdemics::load_model::fit::{fit_linear, fit_piecewise};
use episimdemics::ptts::flu_model;
use episimdemics::ptts::model::HealthTracker;
use episimdemics::synthpop::{Population, PopulationConfig};
use proptest::prelude::*;

fn arb_pop() -> impl Strategy<Value = Population> {
    (300u32..1200, 0u64..1000).prop_map(|(n, seed)| {
        Population::generate(&PopulationConfig::small("P", n, seed))
    })
}

fn arb_strategy() -> impl Strategy<Value = DistStrategy> {
    prop_oneof![
        Just(DistStrategy::RoundRobin),
        Just(DistStrategy::GraphPartition),
        Just(DistStrategy::RoundRobinSplit),
        Just(DistStrategy::GraphPartitionSplit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flagship property: the parallel simulator equals the sequential
    /// oracle for any population, seed, distribution strategy and PE count.
    #[test]
    fn parallel_equals_oracle(
        pop in arb_pop(),
        strategy in arb_strategy(),
        k in 1u32..6,
        pes in 1u32..4,
        sim_seed in 0u64..500,
    ) {
        let cfg = SimConfig {
            days: 12,
            r: 0.0015,
            seed: sim_seed,
            initial_infections: 4,
            ..Default::default()
        };
        let oracle = run_sequential(&pop, &flu_model(), &cfg);
        let dist = DataDistribution::build(&pop, strategy, k, sim_seed);
        let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(pes)).run();
        prop_assert_eq!(run.curve, oracle);
    }

    /// splitLoc conserves visits, people and interaction cohorts for any
    /// threshold.
    #[test]
    fn splitloc_conserves(pop in arb_pop(), threshold in 10u32..200) {
        let res = split_heavy_locations(&pop, &SplitConfig {
            max_partitions: 64,
            threshold_override: Some(threshold),
        });
        prop_assert_eq!(res.pop.visits.len(), pop.visits.len());
        prop_assert_eq!(res.pop.people.len(), pop.people.len());
        // Degrees after split never exceed the original maximum.
        let deg = |p: &Population| {
            let mut d = vec![0u32; p.locations.len()];
            for v in &p.visits { d[v.location.0 as usize] += 1; }
            d
        };
        let dmax_before = deg(&pop).into_iter().max().unwrap_or(0);
        let dmax_after = deg(&res.pop).into_iter().max().unwrap_or(0);
        prop_assert!(dmax_after <= dmax_before);
        // Every visit's sublocation stays within its location's rooms.
        for v in &res.pop.visits {
            prop_assert!(
                v.sublocation.0 < res.pop.locations[v.location.0 as usize].n_sublocations
            );
        }
    }

    /// The partitioner always returns a valid assignment whose max load is
    /// at least the heaviest vertex (a sanity floor) and whose speedup
    /// bound never exceeds the Ltot/lmax ceiling.
    #[test]
    fn partitioner_bounds(pop in arb_pop(), k in 2u32..32) {
        let (g, _) = episimdemics::core::build_workload_graph(
            &pop,
            &episimdemics::load_model::PiecewiseModel::paper_constants(),
            episimdemics::load_model::LoadUnits::default(),
        );
        let part = kway_partition(&g, &PartitionConfig::new(k));
        prop_assert!(part.validate().is_ok());
        let q = PartitionQuality::compute(&g, &part);
        for c in 0..2 {
            let lmax_vertex = (0..g.n()).map(|v| g.vwgt(v, c)).max().unwrap_or(0);
            prop_assert!(q.max_load(c) >= lmax_vertex);
            let sub = q.speedup_upper_bound(c);
            let ceiling = q.total_load(c) as f64 / lmax_vertex.max(1) as f64;
            prop_assert!(sub <= ceiling + 1e-9);
        }
    }

    /// Health trajectories terminate and are reproducible for any entity.
    #[test]
    fn ptts_trajectories_terminate(seed in 0u64..10_000, entity in 0u64..10_000) {
        let m = flu_model();
        let mut h = HealthTracker::new(&m);
        h.infect(&m, seed, entity, 0);
        let mut day = 1u64;
        while h.days_remaining != u32::MAX {
            h.advance(&m, seed, entity, day);
            day += 1;
            prop_assert!(day < 200, "flu course must terminate");
        }
        prop_assert_eq!(m.state(h.state).name.as_str(), "recovered");
    }

    /// Piecewise fitting never panics and reproduces a clean linear signal
    /// on arbitrary grids.
    #[test]
    fn piecewise_fit_on_linear_data(
        a in -100.0f64..100.0,
        b in 0.1f64..10.0,
        n in 6usize..100,
    ) {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| {
            let x = i as f64;
            (x, a + b * x)
        }).collect();
        let m = fit_piecewise(&pts, 1.0).unwrap();
        let lin = fit_linear(&pts).unwrap();
        prop_assert!((lin.b - b).abs() < 1e-6);
        // The piecewise model on a linear signal predicts within noise.
        for &(x, y) in &pts {
            prop_assert!((m.eval(x).max(0.0) - y.max(0.0)).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    /// Generated populations always satisfy their structural contract.
    #[test]
    fn population_contract(pop in arb_pop()) {
        prop_assert_eq!(pop.person_offsets.len(), pop.people.len() + 1);
        for (pid, vs) in pop.iter_people() {
            prop_assert!(!vs.is_empty());
            let mut cursor = 0u16;
            for v in vs {
                prop_assert_eq!(v.person, pid);
                prop_assert_eq!(v.start_min, cursor);
                cursor = v.end_min();
            }
            prop_assert_eq!(cursor, synthpop::MINUTES_PER_DAY);
        }
    }
}
