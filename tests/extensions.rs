//! Integration tests for the beyond-the-paper extensions, exercised in
//! combination: checkpointing across a rebalanced run, ensembles vs
//! explicit replicates, endemic dynamics under interventions, and the
//! everything-on configuration (TRAM + SMP + aggregation + splitLoc +
//! threads) against the oracle.

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::checkpoint::{capture, Checkpoint};
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::ensemble::run_ensemble;
use episimdemics::core::rebalance::{run_with_rebalancing, RebalanceConfig};
use episimdemics::core::seq::{run_sequential, run_sequential_with_states};
use episimdemics::core::simulator::{Carry, SimConfig, Simulator};
use episimdemics::core::tree::transmission_stats;
use episimdemics::ptts::intervention::{Action, Intervention, InterventionSet, Trigger};
use episimdemics::ptts::model::TreatmentId;
use episimdemics::ptts::{flu_model, seirs_model};
use episimdemics::synthpop::{LocationKind, Population, PopulationConfig};

fn pop() -> Population {
    Population::generate(&PopulationConfig::small("EXT", 2200, 99))
}

fn cfg(days: u32) -> SimConfig {
    SimConfig {
        days,
        r: 0.0013,
        seed: 99,
        initial_infections: 7,
        stop_when_extinct: false,
        ..Default::default()
    }
}

#[test]
fn everything_on_matches_oracle() {
    // TRAM + SMP processes + aggregation + GP-splitLoc + threads, all at
    // once, against the plain sequential oracle.
    let pop = pop();
    let oracle = run_sequential(&pop, &flu_model(), &cfg(25));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 6, 99);
    let mut rt = RuntimeConfig::threaded(3);
    rt.smp.pes_per_process = 1; // all inter-PE traffic takes the network path
    rt.aggregation.tram_2d = true;
    rt.aggregation.max_batch = 8;
    let run = Simulator::new(&dist, flu_model(), cfg(25), rt).run();
    assert_eq!(run.curve, oracle);
}

#[test]
fn checkpoint_through_a_rebalanced_run() {
    // Epoch 1 runs on one distribution; checkpoint; resume on a *different*
    // distribution (as the rebalancer would). The combined curve must equal
    // a straight run — migration + checkpoint compose.
    let pop = pop();
    let dist_a = DataDistribution::build(&pop, Strategy::RoundRobin, 4, 99);
    let dist_b = DataDistribution::build(&pop, Strategy::GraphPartition, 4, 99);
    let straight =
        Simulator::new(&dist_a, flu_model(), cfg(20), RuntimeConfig::sequential(2)).run();

    let mut carry = Carry::new(cfg(20).interventions.clone(), 7);
    let mut sim = Simulator::new(&dist_a, flu_model(), cfg(20), RuntimeConfig::sequential(2));
    let (mut days, _, _) = sim.run_days(0, 10, &mut carry);
    let (states, _) = sim.dismantle();
    let ckpt = Checkpoint::decode(&capture(10, 7, &carry, states).encode()).unwrap();

    let mut carry2 = ckpt.to_carry(&cfg(20).interventions);
    let mut sim2 = Simulator::with_states(
        &dist_b, // resumed on a different distribution
        flu_model(),
        cfg(20),
        RuntimeConfig::sequential(4),
        Some(ckpt.states),
    );
    let (tail, _, _) = sim2.run_days(10, 20, &mut carry2);
    days.extend(tail);
    assert_eq!(days, straight.curve.days);
}

#[test]
fn rebalanced_seirs_with_interventions_matches_plain() {
    // The tallest stack on the epidemiology side: endemic disease, a
    // prevalence-triggered school closure, and dynamic LB underneath.
    let pop = pop();
    let interventions = InterventionSet::new(vec![Intervention {
        trigger: Trigger::PrevalenceAbove(0.05),
        action: Action::CloseKind {
            kind: LocationKind::School as u8,
            duration: 14,
        },
    }]);
    let mut c = cfg(40);
    c.interventions = interventions;
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 5, 99);
    let plain = Simulator::new(
        &dist,
        seirs_model(15.0),
        c.clone(),
        RuntimeConfig::sequential(2),
    )
    .run();
    let rb = run_with_rebalancing(
        &dist,
        seirs_model(15.0),
        c,
        RuntimeConfig::sequential(2),
        RebalanceConfig {
            epoch_days: 8,
            imbalance_threshold: 1.0,
        },
    );
    assert_eq!(plain.curve, rb.run.curve);
    assert!(rb.epochs.len() >= 4);
}

#[test]
fn ensemble_equals_explicit_replicates() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 1, 99);
    let base = cfg(15);
    let ens = run_ensemble(&dist, &flu_model(), &base, 5, 3);
    for rep in 0..5u32 {
        let mut c = base.clone();
        c.seed = base.seed + rep as u64;
        let explicit = run_sequential(&dist.pop, &flu_model(), &c);
        assert_eq!(ens.runs[rep as usize], explicit, "replicate {rep}");
    }
}

#[test]
fn surrogate_screen_never_discards_the_true_top_k() {
    // EXPERIMENTS.md tolerance: promoting 2k survivors from the surrogate
    // ranking must retain every member of the true top-k of an
    // exhaustively simulated grid. The surrogate orders points by
    // percolation attack, the truth by mean simulated attack rate; both
    // are monotone in transmissibility, so the retention bound is the
    // test of the surrogate's ranking fidelity, not of exact scores.
    use episimdemics::core::ensemble::{run_sweep, surrogate, CowWorld, EnsembleSpec};

    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::RoundRobin, 2, 99);
    let world = CowWorld::build(&dist, flu_model());
    let rs = [0.0002, 0.0005, 0.0009, 0.0014, 0.0020, 0.0028];
    let spec = EnsembleSpec::grid(&cfg(20), &rs, 3);

    // Ground truth: every point fully simulated.
    let store = run_sweep(&world, &spec, 2);
    let mut true_order: Vec<usize> = (0..rs.len()).collect();
    true_order.sort_by(|&a, &b| {
        store
            .mean_attack_rate(b)
            .partial_cmp(&store.mean_attack_rate(a))
            .unwrap()
            .then(a.cmp(&b))
    });

    // Surrogate ranking over the same spec.
    let graph = surrogate::ContactGraph::build(&world.pop);
    assert!(graph.n_edges() > 0, "contact graph must not be empty");
    let scores = surrogate::screen(&graph, &world, &spec);

    let k = 2;
    let survivors = surrogate::promote_top_k(&scores, 2 * k);
    for &want in &true_order[..k] {
        assert!(
            survivors.contains(&want),
            "true top-{k} point {want} (r={}) discarded by the screen; \
             survivors {survivors:?}, true order {true_order:?}",
            rs[want]
        );
    }
}

#[test]
fn vaccination_shows_up_in_the_transmission_tree() {
    // Vaccinating early must lower both the attack rate and the early-cohort
    // R_t relative to no action, on the identical population and seed.
    let pop = pop();
    let base = cfg(45);
    let (curve_base, states_base) = run_sequential_with_states(&pop, &flu_model(), &base);
    let mut vaxed = base.clone();
    vaxed.interventions = InterventionSet::new(vec![Intervention {
        trigger: Trigger::Day(2),
        action: Action::Vaccinate {
            fraction: 0.6,
            treatment: TreatmentId(1),
            efficacy_factor: 0.15,
        },
    }]);
    let (curve_vax, states_vax) = run_sequential_with_states(&pop, &flu_model(), &vaxed);
    assert!(
        curve_vax.total_infections() < curve_base.total_infections(),
        "vaccination must avert infections ({} vs {})",
        curve_vax.total_infections(),
        curve_base.total_infections()
    );
    let t_base = transmission_stats(&states_base);
    let t_vax = transmission_stats(&states_vax);
    assert_eq!(t_base.cases, curve_base.total_infections());
    assert_eq!(t_vax.cases, curve_vax.total_infections());
    // Mean offspring over all cases ~ attack-rate ordering.
    let mean_r =
        |t: &episimdemics::core::tree::TransmissionStats| t.edges as f64 / t.cases.max(1) as f64;
    assert!(mean_r(&t_vax) <= mean_r(&t_base) + 0.05);
}

#[test]
fn venue_attribution_consistent_in_parallel_runs() {
    let pop = pop();
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 99);
    let run = Simulator::new(&dist, flu_model(), cfg(25), RuntimeConfig::sequential(4)).run();
    for d in &run.curve.days {
        assert_eq!(d.infections_by_kind.iter().sum::<u64>(), d.infects_sent);
    }
    // splitLoc must not change which venue kind transmissions attribute to:
    // split pieces inherit the original kind.
    let plain = DataDistribution::build(&pop, Strategy::RoundRobin, 4, 99);
    let run_plain =
        Simulator::new(&plain, flu_model(), cfg(25), RuntimeConfig::sequential(4)).run();
    let sum_kinds = |r: &episimdemics::core::simulator::SimRun| -> [u64; 5] {
        let mut acc = [0u64; 5];
        for d in &r.curve.days {
            for (k, &n) in d.infections_by_kind.iter().enumerate() {
                acc[k] += n;
            }
        }
        acc
    };
    assert_eq!(sum_kinds(&run), sum_kinds(&run_plain));
}

#[test]
fn population_io_round_trip_preserves_simulation() {
    // Serialize the population, reload it, and get the same epidemic.
    let pop = pop();
    let bytes = episimdemics::synthpop::io::encode(&pop);
    let reloaded = episimdemics::synthpop::io::decode(&bytes).unwrap();
    let a = run_sequential(&pop, &flu_model(), &cfg(20));
    let b = run_sequential(&reloaded, &flu_model(), &cfg(20));
    assert_eq!(a, b);
}
