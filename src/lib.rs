//! # episimdemics — meta-crate
//!
//! Re-exports the whole EpiSimdemics-rs workspace behind one dependency, so
//! downstream users (and the `examples/`) can write
//! `use episimdemics::prelude::*;`.
//!
//! The workspace reproduces Yeom et al., *Overcoming the Scalability
//! Challenges of Epidemic Simulations on Blue Waters* (IPDPS 2014). See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use chare_rt;
pub use episerve;
pub use episim_core as core;
pub use graph_part;
pub use load_model;
pub use ptts;
pub use scale_model;
pub use synthpop;

/// The names most programs need.
pub mod prelude {
    pub use episim_core::prelude::*;
    pub use ptts::{flu_model, Ptts};
    pub use synthpop::{Population, PopulationConfig, UsState};
}
