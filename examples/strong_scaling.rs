//! Strong-scaling demo: run the *real* simulator at increasing PE counts,
//! verify the epidemic is bit-identical at every width, then project the
//! same configuration onto a Blue-Waters-like machine with the calibrated
//! performance model (the paper's Figure 13 methodology in miniature).
//!
//! ```sh
//! cargo run --release --example strong_scaling -- --engine seq
//! ```
//!
//! `--engine {seq,threads,vt,net}` picks the runtime engine (default seq).
//! With `net`, even PE counts run as two OS processes over loopback TCP —
//! the worker process re-executes this example, so the flag is forwarded
//! through `EPISIM_NET_CHILD_ARGS`.

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::engine::EngineChoice;
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::load_model::{LoadUnits, PiecewiseModel};
use episimdemics::ptts::flu_model;
use episimdemics::scale_model::{
    calibrate_from_run, inputs_from_distribution, project_day, MachineModel, RuntimeOptions,
};
use episimdemics::synthpop::{Population, PopulationConfig};

fn engine_from_args() -> EngineChoice {
    let args: Vec<String> = std::env::args().collect();
    let mut engine = EngineChoice::Seq;
    let mut i = 1;
    while i < args.len() {
        let value = if args[i] == "--engine" && i + 1 < args.len() {
            i += 1;
            Some(args[i].clone())
        } else {
            args[i].strip_prefix("--engine=").map(str::to_owned)
        };
        if let Some(v) = value {
            engine = v.parse().unwrap_or_else(|e| panic!("{e}"));
        }
        i += 1;
    }
    engine
}

/// Engine-appropriate runtime config: the net engine splits even PE
/// counts across two OS processes (odd counts run standalone).
fn runtime_for(engine: EngineChoice, pes: u32) -> RuntimeConfig {
    let n_procs = if engine == EngineChoice::Net && pes % 2 == 0 && pes > 1 {
        2
    } else {
        1
    };
    engine.runtime_config(pes, n_procs)
}

fn main() {
    let engine = engine_from_args();
    if engine == EngineChoice::Net {
        // Worker processes re-exec this binary argv-less; forward the flag.
        std::env::set_var("EPISIM_NET_CHILD_ARGS", "--engine net");
    }
    let pop = Population::generate(&PopulationConfig::small("scale", 10_000, 5));
    let cfg = SimConfig {
        days: 15,
        r: 0.0001,
        seed: 5,
        initial_infections: 10,
        stop_when_extinct: false,
        ..Default::default()
    };

    // ---- Real runs at 1..8 PEs: identical results, measured busy time.
    println!("== real runs ({engine:?} engine, measured busy time) ==");
    println!(
        "{:>4} {:>12} {:>14} {:>12}",
        "PEs", "total_inf", "max_busy_ms", "imbalance"
    );
    let mut baseline: Option<(Vec<u64>, f64)> = None;
    let mut calibration_run = None;
    for pes in [1u32, 2, 4, 8] {
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, pes, 5);
        let run = Simulator::new(&dist, flu_model(), cfg.clone(), runtime_for(engine, pes)).run();
        let series = run.curve.new_infection_series();
        let max_busy: u64 = run
            .perf
            .iter()
            .map(|p| p.location_phase.max_busy_ns())
            .sum();
        let tot_busy: u64 = run
            .perf
            .iter()
            .map(|p| p.location_phase.totals().busy_ns)
            .sum();
        let imbalance = max_busy as f64 * pes as f64 / tot_busy.max(1) as f64;
        println!(
            "{:>4} {:>12} {:>14.2} {:>12.2}",
            pes,
            run.curve.total_infections(),
            max_busy as f64 / 1e6,
            imbalance
        );
        match &baseline {
            None => baseline = Some((series, max_busy as f64)),
            Some((base_series, _)) => {
                assert_eq!(base_series, &series, "results must not depend on PE count")
            }
        }
        if pes == 2 {
            calibration_run = Some(run);
        }
    }
    println!("(epidemic identical at every PE count — determinism by construction)\n");

    // ---- Calibrate the machine model from the measured run and project.
    let units: u64 = episimdemics::core::workload::location_static_loads(
        &pop,
        &PiecewiseModel::paper_constants(),
        LoadUnits::default(),
    )
    .iter()
    .sum();
    let machine = calibrate_from_run(calibration_run.as_ref().unwrap(), units)
        .map(|c| c.apply_to(MachineModel::default()))
        .unwrap_or_default();
    println!("== projection to a Cray-XE6-like machine (calibrated) ==");
    println!(
        "{:>8} {:>12} {:>10} {:>12}",
        "P", "s/day", "speedup", "efficiency"
    );
    let opts = RuntimeOptions::optimized();
    let mut base_s = 0.0;
    for p in [1u32, 16, 64, 256, 1024, 4096] {
        let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, p, 5);
        let inputs = inputs_from_distribution(
            &dist,
            &PiecewiseModel::paper_constants(),
            LoadUnits::default(),
        );
        let proj = project_day(&inputs, &machine, &opts);
        if p == 1 {
            base_s = proj.seconds;
        }
        println!(
            "{:>8} {:>12.5} {:>10.1} {:>11.1}%",
            p,
            proj.seconds,
            base_s / proj.seconds,
            100.0 * base_s / proj.seconds / p as f64
        );
    }
}
