//! Course-of-action analysis: the kind of study EpiSimdemics ran during
//! the 2009 H1N1 response — "the analysts performed course-of-action
//! analyses to estimate the impact of closing schools and shutting down
//! workplaces" (paper §I).
//!
//! Compares four policies on the same outbreak, using the intervention
//! DSL for one of them:
//!
//! ```sh
//! cargo run --release --example intervention_study
//! ```

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::core::EpiCurve;
use episimdemics::ptts::dsl;
use episimdemics::ptts::flu_model;
use episimdemics::ptts::intervention::{Action, Intervention, InterventionSet, Trigger};
use episimdemics::ptts::model::TreatmentId;
use episimdemics::synthpop::{LocationKind, Population, PopulationConfig};

fn run_policy(pop: &Population, name: &str, interventions: InterventionSet) -> EpiCurve {
    let dist = DataDistribution::build(pop, Strategy::GraphPartitionSplit, 4, 7);
    let cfg = SimConfig {
        days: 150,
        r: 0.0001,
        seed: 7,
        initial_infections: 10,
        interventions,
        ..Default::default()
    };
    let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(4)).run();
    println!(
        "{name:<28} attack rate {:>5.1}%  peak day {:>3}  total {:>6}",
        100.0 * run.curve.attack_rate(),
        run.curve.peak_day().map(|d| d as i64).unwrap_or(-1),
        run.curve.total_infections()
    );
    run.curve
}

fn main() {
    let pop = Population::generate(&PopulationConfig::small("city", 30_000, 2024));
    println!(
        "city of {} people — comparing response policies\n",
        pop.n_people()
    );

    // Policy 0: do nothing.
    let baseline = run_policy(&pop, "baseline (no action)", InterventionSet::none());

    // Policy 1: close schools for 30 days once prevalence crosses 1%.
    let school_closure = InterventionSet::new(vec![Intervention {
        trigger: Trigger::PrevalenceAbove(0.01),
        action: Action::CloseKind {
            kind: LocationKind::School as u8,
            duration: 30,
        },
    }]);
    run_policy(&pop, "school closure @1% (30d)", school_closure);

    // Policy 2: vaccinate 40% of susceptibles on day 10.
    let vaccination = InterventionSet::new(vec![Intervention {
        trigger: Trigger::Day(10),
        action: Action::Vaccinate {
            fraction: 0.4,
            treatment: TreatmentId(1),
            efficacy_factor: 0.2,
        },
    }]);
    run_policy(&pop, "vaccinate 40% on day 10", vaccination);

    // Policy 3: combined response, specified in the intervention DSL.
    let text = format!(
        "{}\n\
         intervention vaccinate when day 10 fraction 0.4 treatment 1 efficacy 0.2\n\
         intervention close when prevalence 0.01 kind {} duration 30\n\
         intervention distance when newcases 50 compliance 0.6 factor 0.5 duration 21\n",
        dsl::FLU_DSL,
        LocationKind::School as u8
    );
    let scenario = dsl::parse(&text).expect("DSL scenario parses");
    let combined = run_policy(
        &pop,
        "combined (from DSL)",
        InterventionSet::new(scenario.interventions),
    );

    println!(
        "\ncombined response averts {} infections vs baseline ({:.0}% reduction)",
        baseline.total_infections() as i64 - combined.total_infections() as i64,
        100.0 * (1.0 - combined.total_infections() as f64 / baseline.total_infections() as f64)
    );
}
