//! Parameter-sweep workflow on the copy-on-write ensemble engine: a DSL
//! scenario with a `sweep` directive fans whole runs across a worker
//! pool over one shared world, after a FastSIR-style surrogate screen
//! ranks the grid and promotes only the most active half to full runs.
//!
//! ```sh
//! cargo run --release --example ensemble_sweep                # built-in demo
//! cargo run --release --example ensemble_sweep my_sweep.scn   # your scenario
//! ```

use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::ensemble::{run_sweep, surrogate, CowWorld, EnsembleSpec};
use episimdemics::core::simulator::SimConfig;
use episimdemics::ptts::dsl;
use episimdemics::ptts::intervention::InterventionSet;
use episimdemics::synthpop::{Population, PopulationConfig};

const DEMO: &str = r#"
# Threshold-hunting sweep: where does this flu variant take off?
disease flu
state susceptible  inf=0.0  sus=1.0  dwell=forever
state latent       inf=0.0  sus=0.0  dwell=uniform(1,3)
state infectious   inf=1.0  sus=0.0  dwell=uniform(3,6)
state recovered    inf=0.0  sus=0.0  dwell=forever
trans latent     t0: infectious 1.0
trans infectious t0: recovered 1.0
start susceptible
exposed latent

sim days=30 r=0.00006 seed=7 initial=8
sweep r=0.00002,0.00004,0.00006,0.00008,0.0001,0.00012 replicates=4 workers=8
"#;

fn main() {
    let (label, text) = match std::env::args().nth(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
        ),
        None => ("<built-in demo>".to_string(), DEMO.to_string()),
    };
    let scenario = dsl::parse(&text).unwrap_or_else(|e| {
        eprintln!("scenario parse error: {e}");
        std::process::exit(1);
    });
    if scenario.sweep.is_empty() {
        eprintln!("scenario {label} has no `sweep` directive — nothing to sweep");
        std::process::exit(1);
    }

    let base = SimConfig {
        days: scenario.sim.days.unwrap_or(25),
        r: scenario.sim.r.unwrap_or(0.0002),
        seed: scenario.sim.seed.unwrap_or(7),
        initial_infections: scenario.sim.initial_infections.unwrap_or(8),
        interventions: InterventionSet::new(scenario.interventions.clone()),
        ..Default::default()
    };
    let replicates = scenario.sweep.replicates.unwrap_or(4);
    let workers = scenario.sweep.workers.unwrap_or(8);
    println!(
        "sweep {label}: {} grid points × {replicates} replicates, {workers} workers",
        scenario.sweep.r_values.len()
    );

    // The world — synthetic population plus graph partition — is built
    // once and shared copy-on-write by every member.
    let pop = Population::generate(&PopulationConfig::small("sweep-town", 8_000, base.seed));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartition, 4, base.seed);
    let world = CowWorld::build(&dist, scenario.ptts);
    let spec = EnsembleSpec::grid(&base, &scenario.sweep.r_values, replicates);

    // Surrogate screen: bond percolation on the static contact graph,
    // shared uniforms across points, so the ranking is monotone in r.
    // Promote the upper half of the grid to full simulation.
    let graph = surrogate::ContactGraph::build(&world.pop);
    let scores = surrogate::screen(&graph, &world, &spec);
    let keep = (spec.points.len() + 1) / 2;
    let survivors = surrogate::promote_top_k(&scores, keep);
    println!("\nsurrogate screen over {} contact edges:", graph.n_edges());
    for s in &scores {
        let promoted = survivors.contains(&s.point);
        println!(
            "  {}  percolation attack {:>5.3}  {}",
            spec.points[s.point].label,
            s.mean_attack,
            if promoted {
                "-> full runs"
            } else {
                "   screened out"
            }
        );
    }

    // Full runs for the survivors only.
    let promoted = EnsembleSpec {
        base: spec.base.clone(),
        points: survivors.iter().map(|&i| spec.points[i].clone()).collect(),
        seeds: spec.seeds.clone(),
    };
    let store = run_sweep(&world, &promoted, workers);

    println!("\nfull runs ({} members):", promoted.n_members());
    println!("point          mean_attack  p10_attack  p90_attack  takeoff");
    for pi in 0..promoted.points.len() {
        let ens = store.point_ensemble(pi);
        println!(
            "{:<14} {:>10.3}  {:>10.3}  {:>10.3}  {:>6.2}",
            promoted.points[pi].label,
            store.mean_attack_rate(pi),
            ens.attack_rate_quantile(0.10),
            ens.attack_rate_quantile(0.90),
            ens.takeoff_probability(0.05),
        );
    }
    println!("\nresult store hash: {:#018x}", store.hash());
}
