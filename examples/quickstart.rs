//! Quickstart: simulate a flu outbreak over a synthetic town and print the
//! epidemic curve.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::ptts::flu_model;
use episimdemics::synthpop::{Population, PopulationConfig};

fn main() {
    // 1. Generate a synthetic population: a 20,000-person town with the
    //    paper's degree structure (people average 5.5 visits/day; location
    //    popularity is heavy-tailed).
    let pop = Population::generate(&PopulationConfig::small("town", 20_000, 42));
    println!(
        "population: {} people, {} locations, {} visits/day",
        pop.n_people(),
        pop.n_locations(),
        pop.n_visits()
    );

    // 2. Distribute the person–location graph over 4 partitions with
    //    heavy-location splitting + multi-constraint graph partitioning
    //    (the paper's GP-splitLoc configuration).
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 42);
    println!(
        "distribution: {} ({} locations after splitLoc, {:.1}% of visits remote)",
        dist.strategy.label(),
        dist.pop.n_locations(),
        100.0 * dist.remote_visit_fraction()
    );

    // 3. Run 120 simulated days of an influenza-like illness on the
    //    message-driven runtime (4 worker threads).
    let cfg = SimConfig {
        days: 120,
        r: 0.0001,
        seed: 42,
        initial_infections: 10,
        ..Default::default()
    };
    let run = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::threaded(4)).run();

    // 4. Report.
    let curve = &run.curve;
    println!("\nday  new  infected  susceptible");
    for d in curve.days.iter().step_by(5) {
        println!(
            "{:>3}  {:>4}  {:>8}  {:>11}",
            d.day, d.new_infections, d.infected_now, d.susceptible
        );
    }
    println!(
        "\nattack rate {:.1}% ({} of {} ever infected), peak day {:?}, {} days simulated",
        100.0 * curve.attack_rate(),
        curve.total_infections(),
        curve.population,
        curve.peak_day(),
        curve.days.len()
    );
    let totals = run
        .perf
        .iter()
        .map(|p| p.person_phase.totals().sent_total())
        .sum::<u64>();
    println!("visit messages over the run: {totals}");
}
