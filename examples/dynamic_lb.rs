//! Dynamic load balancing — the paper's §VII future work, running.
//!
//! Starts an outbreak from a deliberately bad data distribution, lets the
//! measurement-driven rebalancer fix it between epochs, and shows that
//! (a) measured imbalance collapses, and (b) the epidemic is bit-identical
//! to a run without any rebalancing.
//!
//! ```sh
//! cargo run --release --example dynamic_lb
//! ```

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::rebalance::{run_with_rebalancing, RebalanceConfig};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::ptts::flu_model;
use episimdemics::synthpop::{Population, PopulationConfig};

fn main() {
    let pop = Population::generate(&PopulationConfig::small("lb-town", 15_000, 31));
    // A hostile starting point: round-robin persons, but every location
    // piled onto partition 0 (as if a naive mapping ignored the location
    // phase entirely).
    let mut dist = DataDistribution::build(&pop, Strategy::RoundRobin, 8, 31);
    dist.location_part.iter_mut().for_each(|p| *p = 0);

    let cfg = SimConfig {
        days: 60,
        r: 0.0001,
        seed: 31,
        initial_infections: 15,
        stop_when_extinct: false,
        ..Default::default()
    };

    println!("== §VII measurement-driven load balancing ==\n");
    let rb = run_with_rebalancing(
        &dist,
        flu_model(),
        cfg.clone(),
        RuntimeConfig::sequential(4),
        RebalanceConfig {
            epoch_days: 10,
            imbalance_threshold: 1.15,
        },
    );
    println!("epoch  days  measured_imbalance  repartitioned");
    for e in &rb.epochs {
        println!(
            "{:>5}  {:>4}  {:>18.3}  {}",
            e.epoch,
            e.days,
            e.imbalance,
            if e.repartitioned {
                "yes"
            } else {
                "no (below threshold)"
            }
        );
    }

    // Same run without rebalancing: the epidemic must be identical.
    let plain = Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::sequential(4)).run();
    assert_eq!(
        plain.curve, rb.run.curve,
        "rebalancing changed the epidemic — bug!"
    );
    println!(
        "\nepidemic identical with and without LB: attack rate {:.1}%, peak day {:?}",
        100.0 * rb.run.curve.attack_rate(),
        rb.run.curve.peak_day()
    );
    println!("(LB changes only where objects live, never what they compute)");
}
