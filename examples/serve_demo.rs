//! episerve end-to-end demo: a simulation-as-a-service control plane on
//! localhost TCP. Starts an in-process server, submits nine concurrent
//! jobs mixing the Seq/Threads/Vt engines, streams every per-day curve
//! point over subscription connections, pauses one job mid-run and
//! resumes it from its CRC checkpoint, cancels another at a day
//! boundary, and verifies that every completion event's `curve_hash` is
//! bit-identical to a direct in-process run of the same spec — including
//! the paused-then-resumed job.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! Prints a per-job table plus the two service metrics EXPERIMENTS.md
//! records: completed jobs/sec and first-curve-point stream latency.

use episimdemics::episerve::{
    reference_hash, Client, EngineSel, Event, JobId, JobSpec, JobState, PoolConfig, Server,
    ServerConfig, Stopwatch,
};
use std::time::Duration;

const N_JOBS: usize = 9;
const PAUSE_TARGET: usize = 1; // a Threads job: paused, then resumed
const CANCEL_TARGET: usize = 2; // a Vt job: cancelled mid-run

fn scenario_dsl() -> String {
    format!(
        "{}\nsim days=20 r=0.0004 seed=11 initial=6\n",
        episimdemics::ptts::dsl::FLU_DSL
    )
}

fn demo_spec(i: usize) -> JobSpec {
    let engine = [EngineSel::Seq, EngineSel::Threads, EngineSel::Vt][i % 3];
    let mut spec = JobSpec::dsl(&format!("demo-{i}"), &scenario_dsl(), engine);
    spec.hints.pop_size = 800;
    spec.hints.pop_seed = 7 + i as u64;
    spec.hints.n_pes = 2;
    spec.hints.n_partitions = 4;
    if i == PAUSE_TARGET || i == CANCEL_TARGET {
        // Pace the two interactive jobs so pause/cancel land mid-run.
        spec.hints.throttle_ms = 25;
    }
    if i == CANCEL_TARGET {
        spec.days = Some(400);
    }
    spec
}

fn wait_for(client: &mut Client, job: JobId, pred: impl Fn(JobState, u32) -> bool) {
    loop {
        let (state, days) = client.status(job).expect("status");
        if pred(state, days) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let data_dir = std::env::temp_dir().join(format!("episerve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut cfg = ServerConfig::local(data_dir);
    cfg.pool = PoolConfig { workers: 4 };
    let server = Server::start(cfg).expect("server start");
    let addr = server.addr().to_string();
    println!("episerve listening on {addr} (4 workers)\n");

    // Pin the expected hashes with direct in-process runs before the
    // service touches anything.
    let specs: Vec<JobSpec> = (0..N_JOBS).map(demo_spec).collect();
    let expected: Vec<Option<u64>> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| (i != CANCEL_TARGET).then(|| reference_hash(s).expect("twin")))
        .collect();

    let mut client = Client::connect(&addr).expect("connect");
    let total = Stopwatch::start();
    let jobs: Vec<JobId> = specs
        .iter()
        .map(|s| client.submit(s).expect("submit"))
        .collect();
    println!("submitted {N_JOBS} jobs: {jobs:?}");

    // One streaming thread per job: subscribe, count curve points, note
    // the latency to the first point, return the terminal event.
    let streamers: Vec<_> = jobs
        .iter()
        .map(|&job| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let c = Client::connect(&addr).expect("connect");
                let watch = Stopwatch::start();
                let (_, stream) = c.subscribe(job).expect("subscribe");
                let mut first_ms = None;
                let mut points = 0u32;
                let terminal = stream
                    .drain(|_| {
                        points += 1;
                        if first_ms.is_none() {
                            first_ms = Some(watch.millis());
                        }
                    })
                    .expect("terminal");
                (job, points, first_ms, terminal)
            })
        })
        .collect();

    // Pause the target once it is a few days in, then resume it.
    let pause_job = jobs[PAUSE_TARGET];
    wait_for(&mut client, pause_job, |s, d| {
        d >= 3 || s.is_terminal() // terminal here would be a demo bug
    });
    client.pause(pause_job).expect("pause");
    wait_for(&mut client, pause_job, |s, _| s == JobState::Paused);
    let (_, paused_at) = client.status(pause_job).expect("status");
    println!("job {pause_job} paused at day {paused_at}; resuming from checkpoint");
    client.resume(pause_job).expect("resume");

    // Cancel the long-running target at a day boundary.
    let cancel_job = jobs[CANCEL_TARGET];
    wait_for(&mut client, cancel_job, |_, d| d >= 2);
    client.cancel(cancel_job).expect("cancel");
    wait_for(&mut client, cancel_job, |s, _| s == JobState::Cancelled);
    println!("job {cancel_job} cancelled mid-run\n");

    // Collect every stream and check the determinism contract.
    println!("job  engine   points  first-point  outcome");
    let mut completed = 0u32;
    let mut latencies = Vec::new();
    for h in streamers {
        let (job, points, first_ms, terminal) = h.join().expect("streamer");
        let i = jobs.iter().position(|&j| j == job).expect("known job");
        if let Some(ms) = first_ms {
            latencies.push(ms);
        }
        let first = first_ms.unwrap_or(0.0);
        let outcome = match terminal {
            Event::Completed { curve_hash, .. } => {
                let want = expected[i].expect("completed job has a twin");
                assert_eq!(
                    curve_hash, want,
                    "job {job}: served hash differs from the direct run"
                );
                completed += 1;
                format!("completed, hash {curve_hash:#018x} == direct run")
            }
            Event::State { state, .. } => format!("terminal state {}", state.as_str()),
            other => format!("{other:?}"),
        };
        println!(
            "{job:>3}  {:<7}  {points:>6}  {first:>8.1}ms   {outcome}",
            specs[i].engine.as_str(),
        );
    }
    let secs = total.seconds().max(1e-9);
    assert_eq!(
        completed,
        (N_JOBS - 1) as u32,
        "all but the cancelled job complete"
    );

    let mean_latency = latencies.iter().sum::<f64>() / latencies.len().max(1) as f64;
    println!(
        "\n{completed} jobs completed in {secs:.2}s  ->  {:.1} jobs/sec",
        f64::from(completed) / secs
    );
    println!("mean stream latency to first curve point: {mean_latency:.1}ms");
    println!("paused-then-resumed job {pause_job} matched its uninterrupted twin bit-for-bit");

    client.shutdown().expect("shutdown");
    server.join();
    println!("server drained cleanly");
}
