//! Scenario-file runner: the full DSL workflow — disease model,
//! interventions, and simulation parameters all come from one text file
//! (pass a path as the first argument, or run the built-in demo scenario).
//!
//! ```sh
//! cargo run --release --example run_scenario                # built-in demo
//! cargo run --release --example run_scenario my_flu.scn     # your scenario
//! ```

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::ptts::dsl;
use episimdemics::ptts::intervention::InterventionSet;
use episimdemics::synthpop::{LocationKind, Population, PopulationConfig};

const DEMO: &str = r#"
# Demo scenario: pandemic flu with a layered response.
disease flu
treatments 2
state susceptible  inf=0.0  sus=1.0  dwell=forever
state latent       inf=0.0  sus=0.0  dwell=uniform(1,3)
state incubating   inf=0.25 sus=0.0  dwell=fixed(1)
state symptomatic  inf=1.0  sus=0.0  dwell=uniform(3,6)
state asymptomatic inf=0.5  sus=0.0  dwell=uniform(3,6)
state recovered    inf=0.0  sus=0.0  dwell=forever
trans latent       t0: incubating 1.0
trans incubating   t0: symptomatic 0.67, asymptomatic 0.33
trans incubating   t1: symptomatic 0.20, asymptomatic 0.80
trans symptomatic  t0: recovered 1.0
trans asymptomatic t0: recovered 1.0
start susceptible
exposed latent

sim days=150 r=0.0001 seed=2026 initial=12

intervention close     when prevalence 0.02 kind 2 duration 21
intervention vaccinate when day 14 fraction 0.35 treatment 1 efficacy 0.25
intervention distance  when newcases 120 compliance 0.5 factor 0.5 duration 30
"#;

fn main() {
    let (label, text) = match std::env::args().nth(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }),
        ),
        None => ("<built-in demo>".to_string(), DEMO.to_string()),
    };
    let scenario = dsl::parse(&text).unwrap_or_else(|e| {
        eprintln!("scenario parse error: {e}");
        std::process::exit(1);
    });
    println!(
        "scenario {label}: disease `{}` ({} states, {} treatments), {} interventions",
        scenario.ptts.name(),
        scenario.ptts.n_states(),
        scenario.ptts.n_treatments(),
        scenario.interventions.len()
    );

    let cfg = SimConfig {
        days: scenario.sim.days.unwrap_or(120),
        r: scenario.sim.r.unwrap_or(0.0001),
        seed: scenario.sim.seed.unwrap_or(42),
        initial_infections: scenario.sim.initial_infections.unwrap_or(10),
        interventions: InterventionSet::new(scenario.interventions),
        ..Default::default()
    };
    println!(
        "sim: {} days, r={}, seed={}, {} seeds\n",
        cfg.days, cfg.r, cfg.seed, cfg.initial_infections
    );

    let pop = Population::generate(&PopulationConfig::small("scenario", 20_000, cfg.seed));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, cfg.seed);
    let run = Simulator::new(&dist, scenario.ptts, cfg, RuntimeConfig::threaded(4)).run();

    print!("{}", run.curve.to_tsv());
    eprintln!(
        "\nattack rate {:.1}%, peak day {:?} ({} school-kind = {:?})",
        100.0 * run.curve.attack_rate(),
        run.curve.peak_day(),
        LocationKind::School as u8,
        LocationKind::School
    );
}
