//! Outbreak forensics: read the transmission tree out of a finished run.
//!
//! Every applied infection records its infector and day, so a completed
//! simulation carries its full who-infected-whom forest. This example runs
//! an outbreak and reports the quantities epidemiologists read off such
//! trees: the case reproduction number R_t over time, the generation
//! interval, the offspring distribution, and the superspreading share.
//!
//! ```sh
//! cargo run --release --example outbreak_forensics
//! ```

use episimdemics::chare_rt::RuntimeConfig;
use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::simulator::{SimConfig, Simulator};
use episimdemics::core::tree::transmission_stats;
use episimdemics::ptts::flu_model;
use episimdemics::synthpop::{LocationKind, Population, PopulationConfig};

fn main() {
    let pop = Population::generate(&PopulationConfig::small("forensics", 25_000, 404));
    let dist = DataDistribution::build(&pop, Strategy::GraphPartitionSplit, 4, 404);
    let cfg = SimConfig {
        days: 150,
        r: 0.0001,
        seed: 404,
        initial_infections: 10,
        ..Default::default()
    };
    let (run, states, _) =
        Simulator::new(&dist, flu_model(), cfg, RuntimeConfig::threaded(4)).run_collecting();
    let curve = &run.curve;
    println!(
        "outbreak over: {} of {} infected ({:.1}%), {} days\n",
        curve.total_infections(),
        curve.population,
        100.0 * curve.attack_rate(),
        curve.days.len()
    );

    let tree = transmission_stats(&states);
    println!(
        "transmission tree: {} cases, {} attributed edges",
        tree.cases, tree.edges
    );
    println!(
        "mean generation interval: {:.1} days (flu model: latent 1–3 + infectious 3–6)",
        tree.mean_generation_interval
    );
    println!(
        "superspreading: top 20% of infectors caused {:.0}% of transmissions\n",
        100.0 * tree.top_infector_share(&states, 0.2)
    );

    println!("R_t by infection cohort (5-day bins):");
    println!("{:>8} {:>8} {:>6}", "days", "cohort", "R_t");
    for chunk in tree
        .rt_by_day
        .chunks(5)
        .zip(tree.cohort_by_day.chunks(5))
        .enumerate()
    {
        let (i, (rts, cohorts)) = chunk;
        let n: u64 = cohorts.iter().sum();
        if n == 0 {
            continue;
        }
        let rt = rts
            .iter()
            .zip(cohorts)
            .map(|(&r, &c)| r * c as f64)
            .sum::<f64>()
            / n as f64;
        println!("{:>4}-{:<3} {:>8} {:>6.2}", i * 5, i * 5 + 4, n, rt);
    }

    println!("\noffspring distribution (secondary cases per case):");
    for (n, &count) in tree.offspring.iter().enumerate().take(8) {
        let bar = "#".repeat(((count as f64).ln_1p() * 4.0) as usize);
        println!("{n:>3}: {count:>7} {bar}");
    }
    if tree.offspring.len() > 8 {
        let tail: u64 = tree.offspring[8..].iter().sum();
        println!(
            " 8+: {tail:>7} (max {} from one person)",
            tree.offspring.len() - 1
        );
    }

    // Where did transmissions come from? Attribute by the infector's most
    // plausible venue kind: count infectee-infector home sharing.
    let mut same_home = 0u64;
    for s in &states {
        if let Some(inf) = s.infected_by {
            if pop.people[s.id as usize].home == pop.people[inf as usize].home {
                same_home += 1;
            }
        }
    }
    println!(
        "\nhousehold transmissions: {} of {} edges ({:.0}%) — {:?} rooms hold ≤{} people",
        same_home,
        tree.edges,
        100.0 * same_home as f64 / tree.edges.max(1) as f64,
        LocationKind::Home,
        LocationKind::Home.room_capacity()
    );
}
