//! Data-distribution study: reproduce the paper's §III story on a single
//! synthetic state — round-robin vs graph partitioning, before and after
//! heavy-location splitting, including the Figure 2 tradeoff example.
//!
//! ```sh
//! cargo run --release --example partition_study
//! ```

use episimdemics::core::distribution::{DataDistribution, Strategy};
use episimdemics::core::workload::location_static_loads;
use episimdemics::graph_part::graph::figure2_example;
use episimdemics::graph_part::{kway_partition, PartitionConfig, PartitionQuality};
use episimdemics::load_model::speedup::{speedup_upper_bound, sub_ceiling};
use episimdemics::load_model::{LoadUnits, PiecewiseModel};
use episimdemics::synthpop::{Population, PopulationConfig};

fn main() {
    // ---- Part 1: the Figure 2 example graph.
    println!("== Figure 2's 13-node example, 5-way ==");
    let g = figure2_example();
    let part = kway_partition(&g, &PartitionConfig::new(5).with_ubfactor(1.7));
    let q = PartitionQuality::compute(&g, &part);
    println!(
        "partitioner found: edge cut {}, max load {} (avg load {:.1})",
        q.edge_cut,
        q.max_load(0),
        q.total_load(0) as f64 / 5.0
    );
    println!(
        "caption's optima: (cut 8, max load 8) load-first vs (cut 6, max load 10) cut-first\n"
    );

    // ---- Part 2: the four strategies on a synthetic state.
    let pop = Population::generate(&PopulationConfig::small("state", 50_000, 99));
    println!(
        "== {} people / {} locations over k = 64 partitions ==",
        pop.n_people(),
        pop.n_locations()
    );
    let model = PiecewiseModel::paper_constants();
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "strategy", "locations", "remote_visits", "Sub(loc)", "ceiling", "edge_cut"
    );
    for strategy in Strategy::ALL {
        let dist = DataDistribution::build(&pop, strategy, 64, 1);
        let loads = location_static_loads(&dist.pop, &model, LoadUnits::default());
        let sub = speedup_upper_bound(&loads, &dist.location_part, dist.k);
        let ceiling = sub_ceiling(&loads);
        let cut = dist
            .quality
            .as_ref()
            .map(|q| q.edge_cut.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>10} {:>11.1}% {:>10.1} {:>12.1} {:>10}",
            dist.strategy.label(),
            dist.pop.n_locations(),
            100.0 * dist.remote_visit_fraction(),
            sub,
            ceiling,
            cut
        );
    }
    println!("\nreading the table like §III: GP cuts remote traffic; splitLoc lifts");
    println!("the Ltot/lmax ceiling; GP-splitLoc gets both — the paper's winner.");
}
