#!/usr/bin/env bash
# Static checks for the workspace: the simlint determinism wall
# (DESIGN.md §9) plus rustfmt. CI runs exactly this script; run it
# locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint --check (static determinism wall) =="
# v2 runs the whole-workspace call-graph rules (R6 transitive hot-path,
# R7 lock order, R8 unsafe audit) on top of the per-file rules, and
# fails on stale (W1) or malformed (W0) waivers. Exit contract is
# unchanged: 0 clean, 1 unwaived findings, 2 usage/policy error.
cargo run -p simlint --release --quiet -- --check

echo "== cargo fmt --check =="
cargo fmt --check

echo "lint: OK"
