#!/usr/bin/env bash
# Static checks for the workspace: the simlint determinism wall
# (DESIGN.md §9) plus rustfmt. CI runs exactly this script; run it
# locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== simlint --check (static determinism wall) =="
cargo run -p simlint --release --quiet -- --check

echo "== cargo fmt --check =="
cargo fmt --check

echo "lint: OK"
