#!/usr/bin/env bash
# Regenerate the machine-readable perf records: BENCH_hotpath.json (schema
# "hotpath-v1"), BENCH_netpath.json (schema "netpath-v1"), and
# BENCH_ensemble.json (schema "ensemble-v1"), all documented in
# EXPERIMENTS.md.
#
# Usage:
#   scripts/bench.sh                 # measure, compare against the committed baseline
#   HOTPATH_COMPARE= scripts/bench.sh   # measure only, no comparison section
#
# Knobs (all optional, forwarded to the binaries):
#   HOTPATH_STATE  state code to generate (default CA)
#   HOTPATH_DAYS   simulated days         (default 20)
#   HOTPATH_PES    PE thread count        (default 4)
#   HOTPATH_SEED   simulation seed        (default 42)
#   HOTPATH_OUT    output JSON path       (default BENCH_hotpath.json)
#   EPISIM_SCALE   population scale       (default 1e-3)
#   NETPATH_HOPS   hops per netpath message   (default 400)
#   NETPATH_OUT    netpath output JSON path   (default BENCH_netpath.json)
#   ENSEMBLE_RS    ensemble sweep r grid      (default 0.0001..0.0003, see binary)
#   ENSEMBLE_OUT   ensemble output JSON path  (default BENCH_ensemble.json)
set -euo pipefail
cd "$(dirname "$0")/.."

export HOTPATH_COMPARE="${HOTPATH_COMPARE-results/hotpath_baseline.json}"

cargo build --release -p bench --bin hotpath --features alloc-count
cargo build --release -p bench --bin netpath
cargo build --release -p bench --bin ensemble
./target/release/hotpath
./target/release/netpath
./target/release/ensemble
